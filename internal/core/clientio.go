package core

import (
	"fmt"
	"sync"

	"gosmr/internal/profiling"
	"gosmr/internal/queue"
	"gosmr/internal/replycache"
	"gosmr/internal/transport"
	"gosmr/internal/wire"
)

// clientWork is one raw inbound frame with the connection it arrived on.
type clientWork struct {
	frame []byte
	cc    *clientConn
}

// clientIO is the ClientIO module (Sec. V-A): a listener, a pool of worker
// threads that do the CPU work (deserialization, reply-cache check, request
// hand-off), and per-connection reader/writer goroutines standing in for the
// non-blocking I/O event loop of the Java implementation. Connections are
// assigned to workers round-robin, exactly as the paper describes.
type clientIO struct {
	r        *Replica
	listener transport.Listener
	workers  []*queue.Bounded[clientWork]

	mu    sync.Mutex
	conns map[*clientConn]struct{}
	next  int // round-robin worker assignment

	closed bool
	wg     sync.WaitGroup
}

// newClientIO binds the client listener and starts the module's goroutines.
func newClientIO(r *Replica) (*clientIO, error) {
	l, err := r.cfg.Network.Listen(r.cfg.ClientAddr)
	if err != nil {
		return nil, fmt.Errorf("core: client listener: %w", err)
	}
	c := &clientIO{
		r:        r,
		listener: l,
		conns:    make(map[*clientConn]struct{}),
	}
	for i := range r.cfg.ClientIOWorkers {
		q := queue.NewBounded[clientWork](fmt.Sprintf("ClientIOQueue-%d", i), 512)
		c.workers = append(c.workers, q)
		th := r.profThread(fmt.Sprintf("ClientIO-%d", i))
		c.wg.Add(1)
		go c.runWorker(q, th)
	}
	c.wg.Add(1)
	go c.runAcceptLoop()
	return c, nil
}

// Addr returns the bound client-facing address.
func (c *clientIO) Addr() string { return c.listener.Addr() }

// runAcceptLoop accepts client connections and assigns them to workers.
func (c *clientIO) runAcceptLoop() {
	defer c.wg.Done()
	for {
		conn, err := c.listener.Accept()
		if err != nil {
			return // listener closed
		}
		cc := &clientConn{
			conn:    conn,
			replies: queue.NewBounded[*wire.ClientReply]("replies", c.r.cfg.ReplyQueueCap),
		}
		c.mu.Lock()
		if c.closed {
			c.mu.Unlock()
			_ = conn.Close()
			return
		}
		c.conns[cc] = struct{}{}
		w := c.workers[c.next%len(c.workers)]
		c.next++
		c.mu.Unlock()

		c.wg.Add(2)
		go c.runConnReader(cc, w)
		go c.runConnWriter(cc)
	}
}

// runConnReader pumps raw frames from one client connection to its assigned
// worker. Blocking on a full worker queue is the first stage of the flow
// control chain: it stops this connection's reads and lets TCP push back.
func (c *clientIO) runConnReader(cc *clientConn, w *queue.Bounded[clientWork]) {
	defer c.wg.Done()
	defer func() {
		cc.replies.Close()
		_ = cc.conn.Close()
		c.mu.Lock()
		delete(c.conns, cc)
		c.mu.Unlock()
	}()
	for {
		frame, err := cc.conn.ReadFrame()
		if err != nil {
			return
		}
		if err := w.Put(nil, clientWork{frame: frame, cc: cc}); err != nil {
			return // module shutting down
		}
	}
}

// runConnWriter serializes and sends queued replies for one connection.
// Back-to-back replies (a pipelining client, a post-stall burst) coalesce
// into one flush when the transport buffers writes.
func (c *clientIO) runConnWriter(cc *clientConn) {
	defer c.wg.Done()
	bw, buffered := cc.conn.(transport.BatchWriter)
	for {
		reply, err := cc.replies.Take(nil)
		if err != nil {
			return
		}
		if !buffered {
			if err := cc.conn.WriteFrame(wire.Marshal(reply)); err != nil {
				return
			}
			continue
		}
		if err := bw.WriteFrameNoFlush(wire.Marshal(reply)); err != nil {
			return
		}
		for {
			next, ok := cc.replies.TryTake()
			if !ok {
				break
			}
			if err := bw.WriteFrameNoFlush(wire.Marshal(next)); err != nil {
				return
			}
		}
		if err := bw.Flush(); err != nil {
			return
		}
	}
}

// runWorker is one ClientIO thread: deserialize, consult the reply cache,
// and either answer directly or push the request toward the Batcher.
func (c *clientIO) runWorker(q *queue.Bounded[clientWork], th *profiling.Thread) {
	defer c.wg.Done()
	th.Transition(profiling.StateBusy)
	defer th.Transition(profiling.StateOther)
	for {
		work, err := q.Take(th)
		if err != nil {
			return
		}
		msg, err := wire.Unmarshal(work.frame)
		if err != nil {
			continue // malformed frame: drop
		}
		req, ok := msg.(*wire.ClientRequest)
		if !ok {
			continue
		}
		c.handleRequest(req, work.cc, th)
	}
}

// handleRequest implements the per-request ClientIO logic of Sec. III-B.
func (c *clientIO) handleRequest(req *wire.ClientRequest, cc *clientConn, th *profiling.Thread) {
	r := c.r
	// Remember where to send this client's replies.
	r.registry.set(req.ClientID, cc)

	cached, status := r.replyCache.Lookup(th, req.ClientID, req.Seq)
	switch status {
	case replycache.StatusCached:
		c.reply(cc, &wire.ClientReply{
			ClientID: req.ClientID, Seq: req.Seq, OK: true,
			Redirect: wire.NoRedirect, Payload: cached,
		})
		return
	case replycache.StatusStale:
		return // older than the last executed request: nothing to say
	case replycache.StatusNew:
	}
	// Route to an ordering group by conflict key, then gate on that group's
	// leadership (groups normally share a leader; per-group hints keep
	// redirects correct even when views drift apart).
	g := r.groups[r.groupFor(req.Payload)]
	if !g.isLeader.Load() {
		c.reply(cc, &wire.ClientReply{
			ClientID: req.ClientID, Seq: req.Seq, OK: false,
			Redirect: g.leaderHint.Load(),
		})
		// Wake the group's Protocol thread: if its view lags group 0's
		// (a missed suspicion), the wake-up lets it re-synchronize and —
		// when this replica leads the current view — claim the group, so
		// clients are not bounced to a dead leader forever.
		_, _ = g.dispatchQ.TryPut(event{kind: evProposalReady})
		return
	}
	// Blocking put: backpressure propagates to this worker, then to the
	// connection readers feeding it (Sec. V-E).
	if err := g.requestQ.Put(th, req); err != nil {
		return
	}
}

// reply enqueues a reply without blocking; a stalled client loses replies
// and must retry (its request stays deduplicated by the reply cache).
func (c *clientIO) reply(cc *clientConn, reply *wire.ClientReply) {
	if ok, _ := cc.replies.TryPut(reply); ok {
		c.r.repliesSent.Add(1)
	}
}

// close shuts the module down: stop accepting, close every connection, stop
// the workers, and wait for all goroutines.
func (c *clientIO) close() {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		c.wg.Wait()
		return
	}
	c.closed = true
	conns := make([]*clientConn, 0, len(c.conns))
	for cc := range c.conns {
		conns = append(conns, cc)
	}
	c.mu.Unlock()

	_ = c.listener.Close()
	for _, cc := range conns {
		_ = cc.conn.Close()
		cc.replies.Close()
	}
	for _, w := range c.workers {
		w.Close()
	}
	c.wg.Wait()
}
