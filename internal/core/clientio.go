package core

import (
	"fmt"
	"sync"

	"gosmr/internal/profiling"
	"gosmr/internal/queue"
	"gosmr/internal/replycache"
	"gosmr/internal/transport"
	"gosmr/internal/wire"
)

// clientWork is one raw inbound frame with the connection it arrived on.
// The frame buffer's ownership travels with it: the connection reader hands
// it off, the worker recycles it once the decoded request is retained or
// dead (pooled is false for transports without the pooled-read extension —
// recycling their fresh buffers is still correct, just not required).
type clientWork struct {
	frame  []byte
	pooled bool
	cc     *clientConn
}

// clientIO is the ClientIO module (Sec. V-A): a listener, a pool of worker
// threads that do the CPU work (deserialization, reply-cache check, request
// hand-off), and per-connection reader/writer goroutines standing in for the
// non-blocking I/O event loop of the Java implementation. Connections are
// assigned to workers round-robin, exactly as the paper describes.
type clientIO struct {
	r        *Replica
	listener transport.Listener
	workers  []*queue.Bounded[clientWork]

	mu    sync.Mutex
	conns map[*clientConn]struct{}
	next  int // round-robin worker assignment

	closed bool
	wg     sync.WaitGroup
}

// newClientIO binds the client listener and starts the module's goroutines.
func newClientIO(r *Replica) (*clientIO, error) {
	l, err := r.cfg.Network.Listen(r.cfg.ClientAddr)
	if err != nil {
		return nil, fmt.Errorf("core: client listener: %w", err)
	}
	c := &clientIO{
		r:        r,
		listener: l,
		conns:    make(map[*clientConn]struct{}),
	}
	for i := range r.cfg.ClientIOWorkers {
		q := queue.NewBounded[clientWork](fmt.Sprintf("ClientIOQueue-%d", i), 512)
		c.workers = append(c.workers, q)
		th := r.profThread(fmt.Sprintf("ClientIO-%d", i))
		c.wg.Add(1)
		go c.runWorker(q, th)
	}
	c.wg.Add(1)
	go c.runAcceptLoop()
	return c, nil
}

// Addr returns the bound client-facing address.
func (c *clientIO) Addr() string { return c.listener.Addr() }

// runAcceptLoop accepts client connections and assigns them to workers.
func (c *clientIO) runAcceptLoop() {
	defer c.wg.Done()
	for {
		conn, err := c.listener.Accept()
		if err != nil {
			return // listener closed
		}
		cc := &clientConn{
			conn:    conn,
			replies: queue.NewBounded[wire.Message]("replies", c.r.cfg.ReplyQueueCap),
		}
		c.mu.Lock()
		if c.closed {
			c.mu.Unlock()
			_ = conn.Close()
			return
		}
		c.conns[cc] = struct{}{}
		w := c.workers[c.next%len(c.workers)]
		c.next++
		c.mu.Unlock()

		// Greeting for reconfigured clusters: the client learns the committed
		// topology (and its epoch) before any reply, so a client that dialed a
		// stale address list re-resolves immediately.
		if t := c.r.topo.Load(); t.Epoch > 0 {
			_, _ = cc.replies.TryPut(&wire.TopoUpdate{Topo: *t})
		}

		c.wg.Add(2)
		go c.runConnReader(cc, w)
		go c.runConnWriter(cc)
	}
}

// runConnReader pumps raw frames from one client connection to its assigned
// worker. Blocking on a full worker queue is the first stage of the flow
// control chain: it stops this connection's reads and lets TCP push back.
func (c *clientIO) runConnReader(cc *clientConn, w *queue.Bounded[clientWork]) {
	defer c.wg.Done()
	defer func() {
		cc.replies.Close()
		_ = cc.conn.Close()
		c.mu.Lock()
		delete(c.conns, cc)
		c.mu.Unlock()
	}()
	for {
		frame, pooled, err := transport.ReadFrameOwned(cc.conn)
		if err != nil {
			return
		}
		if err := w.Put(nil, clientWork{frame: frame, pooled: pooled, cc: cc}); err != nil {
			transport.RecycleFrame(frame, pooled)
			return // module shutting down
		}
	}
}

// runConnWriter serializes and sends queued replies for one connection.
// Back-to-back replies (a pipelining client, a post-stall burst) coalesce
// into one flush when the transport buffers writes; each reply is encoded
// straight into the transport's write buffer (or a reused scratch) and its
// pooled struct is released after encoding.
func (c *clientIO) runConnWriter(cc *clientConn) {
	defer c.wg.Done()
	var mc msgConn
	mc.bind(cc.conn)
	for {
		reply, err := cc.replies.Take(nil)
		if err != nil {
			return
		}
		werr := mc.write(reply)
		wire.Release(reply)
		if werr != nil {
			return
		}
		if mc.buffered() {
			for {
				next, ok := cc.replies.TryTake()
				if !ok {
					break
				}
				werr = mc.write(next)
				wire.Release(next)
				if werr != nil {
					return
				}
			}
			if err := mc.flush(); err != nil {
				return
			}
		}
	}
}

// runWorker is one ClientIO thread: deserialize, consult the reply cache,
// and either answer directly or push the request toward the Batcher. The
// worker owns the frame buffer: a request bound for the Batcher is Retained
// (its payload copied out) before the frame is recycled; a request answered
// or dropped here dies with it and its struct goes back to the pool.
func (c *clientIO) runWorker(q *queue.Bounded[clientWork], th *profiling.Thread) {
	defer c.wg.Done()
	th.Transition(profiling.StateBusy)
	defer th.Transition(profiling.StateOther)
	for {
		work, err := q.Take(th)
		if err != nil {
			return
		}
		msg, err := wire.Unmarshal(work.frame)
		if err != nil {
			transport.RecycleFrame(work.frame, work.pooled)
			continue // malformed frame: drop
		}
		if rd, ok := msg.(*wire.ClientRead); ok {
			enqueued := c.handleRead(rd, work.cc)
			transport.RecycleFrame(work.frame, work.pooled)
			if !enqueued {
				wire.Release(rd)
			}
			continue
		}
		if rc, ok := msg.(*wire.Reconfig); ok {
			c.handleReconfig(rc, work.cc)
			transport.RecycleFrame(work.frame, work.pooled)
			continue
		}
		req, ok := msg.(*wire.ClientRequest)
		if !ok {
			wire.Release(msg)
			transport.RecycleFrame(work.frame, work.pooled)
			continue
		}
		enqueued := c.handleRequest(req, work.cc, th)
		transport.RecycleFrame(work.frame, work.pooled)
		if !enqueued {
			wire.Release(req)
		}
	}
}

// handleRequest implements the per-request ClientIO logic of Sec. III-B. It
// reports whether req was handed to the Batcher pipeline (which then owns
// the struct until the batch encode); a false return leaves the caller
// owning a request whose payload still borrows from the frame.
func (c *clientIO) handleRequest(req *wire.ClientRequest, cc *clientConn, th *profiling.Thread) bool {
	r := c.r
	if req.ClientID == wire.ConfigClientID {
		return false // reserved for ordered config commands; never a client's ID
	}
	// Remember where to send this client's replies.
	r.registry.set(req.ClientID, cc)

	cached, status := r.replyCache.Lookup(th, req.ClientID, req.Seq)
	switch status {
	case replycache.StatusCached:
		reply := wire.NewClientReply()
		reply.ClientID, reply.Seq = req.ClientID, req.Seq
		reply.OK, reply.Redirect, reply.Payload = true, wire.NoRedirect, cached
		c.reply(cc, reply)
		return false
	case replycache.StatusStale:
		return false // older than the last executed request: nothing to say
	case replycache.StatusNew:
	}
	// Route to an ordering group by conflict key, then gate on that group's
	// leadership (groups normally share a leader; per-group hints keep
	// redirects correct even when views drift apart).
	g := r.groups[r.groupFor(req.Payload)]
	if !g.isLeader.Load() {
		reply := wire.NewClientReply()
		reply.ClientID, reply.Seq = req.ClientID, req.Seq
		reply.Redirect = g.leaderHint.Load()
		c.reply(cc, reply)
		// Wake the group's Protocol thread: if its view lags group 0's
		// (a missed suspicion), the wake-up lets it re-synchronize and —
		// when this replica leads the current view — claim the group, so
		// clients are not bounced to a dead leader forever.
		_, _ = g.dispatchQ.TryPut(event{kind: evProposalReady})
		return false
	}
	// The request outlives the frame from here (RequestQueue → Batcher):
	// copy the payload out before the caller recycles the frame.
	wire.Retain(req)
	// Blocking put: backpressure propagates to this worker, then to the
	// connection readers feeding it (Sec. V-E).
	if err := g.requestQ.Put(th, req); err != nil {
		return false // queue closed on shutdown; the caller reclaims the struct
	}
	return true
}

// handleRead routes one read-only request onto the read path (reads.go).
// Reads never enter the ordering pipeline and bypass the reply cache (they
// are idempotent); one the replica cannot serve is bounced — !OK plus the
// leader hint — and the client falls back to an ordered Execute. Reports
// whether the pooled struct was handed off.
func (c *clientIO) handleRead(rd *wire.ClientRead, cc *clientConn) bool {
	r := c.r
	r.registry.set(rd.ClientID, cc)
	wire.Retain(rd) // the read outlives the frame in the ReadManager
	if ok, _ := r.reads.q.TryPut(readEvent{kind: rSubmit, req: rd, cc: cc}); ok {
		return true
	}
	// Read path overloaded: bounce rather than block the worker.
	reply := wire.NewClientReply()
	reply.ClientID, reply.Seq = rd.ClientID, rd.Seq
	reply.Redirect = r.groups[0].leaderHint.Load()
	c.reply(cc, reply)
	return false
}

// handleReconfig serves an administrative add/remove request. The blocking
// part — waiting for the config command to commit — runs on its own
// goroutine, never on a worker thread. A non-leader answers with a redirect,
// exactly like a write; success carries the committed topology as payload.
func (c *clientIO) handleReconfig(m *wire.Reconfig, cc *clientConn) {
	r := c.r
	if !r.groups[0].isLeader.Load() {
		reply := wire.NewClientReply()
		reply.ClientID, reply.Seq = m.ClientID, m.Seq
		reply.Redirect = r.groups[0].leaderHint.Load()
		c.reply(cc, reply)
		return
	}
	remove, peerAddr, clientAddr := int(m.Remove), m.PeerAddr, m.ClientAddr
	clientID, seq := m.ClientID, m.Seq
	c.wg.Add(1)
	go func() {
		defer c.wg.Done()
		var (
			t   *wire.Topology
			err error
		)
		if remove < 0 {
			t, err = r.AddReplica(peerAddr, clientAddr)
		} else {
			t, err = r.RemoveReplica(remove)
		}
		reply := wire.NewClientReply()
		reply.ClientID, reply.Seq = clientID, seq
		reply.Redirect = wire.NoRedirect
		if err != nil {
			reply.Payload = []byte(err.Error())
		} else {
			reply.OK = true
			reply.Payload = wire.EncodeTopology(t)
		}
		c.reply(cc, reply)
	}()
}

// broadcastTopology pushes a newly committed topology to every connected
// client (best-effort: a client that misses it learns from the greeting on
// its next reconnect, or from the epoch fence bouncing its next request).
func (c *clientIO) broadcastTopology(t *wire.Topology) {
	c.mu.Lock()
	conns := make([]*clientConn, 0, len(c.conns))
	for cc := range c.conns {
		conns = append(conns, cc)
	}
	c.mu.Unlock()
	for _, cc := range conns {
		_, _ = cc.replies.TryPut(&wire.TopoUpdate{Topo: *t})
	}
}

// reply enqueues a reply without blocking; a stalled client loses replies
// and must retry (its request stays deduplicated by the reply cache).
func (c *clientIO) reply(cc *clientConn, reply *wire.ClientReply) {
	if ok, _ := cc.replies.TryPut(reply); ok {
		c.r.repliesSent.Add(1)
	} else {
		wire.Release(reply)
	}
}

// close shuts the module down: stop accepting, close every connection, stop
// the workers, and wait for all goroutines.
func (c *clientIO) close() {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		c.wg.Wait()
		return
	}
	c.closed = true
	conns := make([]*clientConn, 0, len(c.conns))
	for cc := range c.conns {
		conns = append(conns, cc)
	}
	c.mu.Unlock()

	_ = c.listener.Close()
	for _, cc := range conns {
		_ = cc.conn.Close()
		cc.replies.Close()
	}
	for _, w := range c.workers {
		w.Close()
	}
	c.wg.Wait()
}
