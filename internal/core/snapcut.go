package core

import (
	"log"
	"time"

	"gosmr/internal/snapshot"
	"gosmr/internal/wire"
)

// Snapshot cut + drain machinery. A snapshot no longer stops execution for
// the whole serialization: the ServiceManager quiesces the workers just
// long enough to mark a consistent cut (plus marshal the reply cache), then
// hands the cut to a drainer goroutine that packs chunks, appends the new
// generation to the in-memory chain, publishes the assembled snapshot, and
// persists it chunk-by-chunk — all while the workers are already executing
// again. The cut pause is O(state the service must mark), not O(state
// serialized): for the copy-on-write KV it is effectively constant.

// memGen is one in-memory snapshot generation (mirrors snapshot.Gen; kept
// separate so the core layer owns its chain representation).
type memGen struct {
	full   bool
	chunks [][]byte
}

// drainJob is the handle for one in-flight background drain. done closing
// transfers chain ownership back to the ServiceManager; failed (read only
// after done) reports that the cut produced no committed snapshot and the
// next cut must be full.
type drainJob struct {
	done   chan struct{}
	failed bool
}

// awaitDrain blocks until the in-flight drain (if any) finishes and folds
// its outcome into the ServiceManager's state. Called before anything that
// needs the chain or the disk layout: the next cut, a transferred-snapshot
// install, shutdown.
func (r *Replica) awaitDrain() {
	if r.drain == nil {
		return
	}
	<-r.drain.done
	if r.drain.failed {
		r.forceFull = true
	}
	r.drain = nil
}

// fullCutDue reports whether the snapshot at executedID is a full cut by
// the cluster-wide cadence: every SnapshotMaxChain-th snapshot, starting
// with the first. A pure function of the cut index and configuration, so
// every replica makes the same full/delta decision and chains stay
// byte-identical cluster-wide.
func (r *Replica) fullCutDue(executedID wire.InstanceID) bool {
	snapIdx := (int64(executedID) + 1) / int64(r.cfg.SnapshotEvery)
	return (snapIdx-1)%int64(r.cfg.SnapshotMaxChain) == 0
}

// cutSource marks a cut on the service and returns its chunk source. A
// service implementing snapshot.Cutter pays only the mark under quiesce; a
// plain blob service serializes under quiesce (the old linear pause) and
// the blob is chunked on the way out — so even legacy services never put an
// unbounded unit on disk or the wire.
func (r *Replica) cutSource(full bool) (snapshot.Source, bool, error) {
	if c, ok := r.svc.(snapshot.Cutter); ok {
		return c.CutSnapshot(full)
	}
	blob, err := r.svc.Snapshot()
	if err != nil {
		return nil, false, err
	}
	return &blobSource{blob: blob}, true, nil
}

// blobSource adapts a whole-state blob to the chunk-source contract:
// always a full generation, drained as maxBytes slices of the blob.
type blobSource struct {
	blob []byte
	off  int
}

func (b *blobSource) Next(maxBytes int) ([]byte, error) {
	if b.off >= len(b.blob) {
		return nil, nil
	}
	if maxBytes < 1 {
		maxBytes = 1
	}
	n := min(len(b.blob)-b.off, maxBytes)
	c := b.blob[b.off : b.off+n : b.off+n]
	b.off += n
	return c, nil
}

func (b *blobSource) Close() {}

// runDrain is the drainer goroutine: everything a snapshot does after the
// cut, concurrent with execution. It owns r.snapChain and r.snapDisk until
// it closes job.done. Log truncation is requested only after the manifest
// commit — persist-before-truncate, unchanged from the all-at-once design,
// just at manifest granularity now.
func (r *Replica) runDrain(job *drainJob, src snapshot.Source, cut wire.InstanceID, full bool, rc, topo []byte) {
	defer close(job.done)
	chunks, err := snapshot.Drain(src, r.cfg.SnapshotChunkBytes)
	if err != nil {
		r.snapshotFailure("draining snapshot chunks", cut, err)
		job.failed = true
		return
	}
	if full {
		r.snapChain = r.snapChain[:0]
	}
	r.snapChain = append(r.snapChain, memGen{full: full, chunks: chunks})
	gens := make([]snapshot.Gen, len(r.snapChain))
	for i, g := range r.snapChain {
		gens[i] = snapshot.Gen{Full: g.full, Chunks: g.chunks}
	}
	snap := wire.Snapshot{
		LastIncluded: cut,
		ServiceState: snapshot.EncodeChain(gens),
		ReplyCache:   rc,
		Groups:       int32(len(r.groups)),
		Topo:         topo,
	}
	// Publish before persisting: catch-up state transfer serves from memory,
	// so a replica with a sick disk still helps lagging peers.
	r.snapshots.put(snap)
	if r.snapDisk != nil {
		if err := r.snapDisk.appendGen(cut, snap.Groups, full, chunks,
			snapshot.SplitBlob(rc, r.cfg.SnapshotChunkBytes), topo); err != nil {
			// Keep the full WAL until a snapshot lands durably; the next cut
			// is forced full so the disk chain never references a missing
			// generation. Out-of-space additionally sheds WAL catch-up
			// retention so the retried cut has room to land.
			r.snapshotFailure("persisting snapshot", cut, err)
			r.maybeShrinkWAL(err)
			job.failed = true
			return
		}
	}
	for _, g := range r.groups {
		gcut := wire.GroupCut(cut, len(r.groups), g.idx)
		_, _ = g.dispatchQ.TryPut(event{kind: evTruncate, upTo: gcut})
	}
}

// snapshotFailure counts and (rate-limited to one line per ~5s) logs a
// failed snapshot stage. Failures used to be swallowed silently here;
// operators alert on the counter, the log line says which stage and why.
func (r *Replica) snapshotFailure(stage string, cut wire.InstanceID, err error) {
	r.snapshotFailures.Add(1)
	now := time.Now().UnixNano()
	last := r.lastSnapFailLog.Load()
	if now-last < int64(5*time.Second) || !r.lastSnapFailLog.CompareAndSwap(last, now) {
		return
	}
	log.Printf("gosmr: replica %d: %s (cut %d) failed: %v (failures so far: %d)",
		r.cfg.ID, stage, cut, err, r.snapshotFailures.Load())
}
