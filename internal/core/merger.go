package core

import (
	"time"

	"gosmr/internal/paxos"
	"gosmr/internal/profiling"
	"gosmr/internal/wire"
)

// The merge stage recombines the per-group decision streams into the single
// total order the ServiceManager consumes. The merged order is a fixed
// round-robin over decided instance slots: merged index m holds ordering
// group m % G, group-local slot m / G. Because every group's decision stream
// is itself deterministic (it is a replicated log), the merged sequence is a
// pure function of the per-group logs — identical on every replica no matter
// how the streams' deliveries interleave in time (see mergeState and its
// property test).
//
// Liveness across idle groups: round-robin can only emit group g's slot s
// after every earlier group filled slot s (and every group filled slot s-1).
// If a group has no traffic while its siblings do, the merge would stall, so
// a leader whose merge stage is blocked on a group it leads proposes an
// empty (no-op) batch in that group — the Mencius-style "skip" — which is
// decided through consensus like any batch and therefore unstalls every
// replica's merge identically.

// mergedDecision is one emitted slot of the merged total order.
type mergedDecision struct {
	id    wire.InstanceID // merged index
	value []byte          // encoded batch
}

// mergeState is the pure merge state machine: feed it per-group decision
// stream items in any arrival order and it emits the deterministic merged
// sequence. It is owned by the Merger goroutine; tests drive it directly.
type mergeState struct {
	groups int
	next   int64             // next merged index to emit
	expect []wire.InstanceID // next group-local slot to emit, per group
	// pending buffers decisions that arrived ahead of their merge turn,
	// keyed by group-local slot.
	pending []map[wire.InstanceID][]byte
}

// newMergeState returns an empty merge over `groups` streams.
func newMergeState(groups int) *mergeState {
	m := &mergeState{
		groups:  groups,
		expect:  make([]wire.InstanceID, groups),
		pending: make([]map[wire.InstanceID][]byte, groups),
	}
	for i := range m.pending {
		m.pending[i] = make(map[wire.InstanceID][]byte)
	}
	return m
}

// cursor returns the group the next merged slot belongs to.
func (m *mergeState) cursor() int { return int(m.next % int64(m.groups)) }

// feed accepts one decision from group g's stream and returns every merged
// slot it unlocks, in merged order. Stale slots (below the group's expected
// position, e.g. replayed after a snapshot install) are dropped.
func (m *mergeState) feed(g int, id wire.InstanceID, value []byte) []mergedDecision {
	if id >= m.expect[g] {
		m.pending[g][id] = value
	}
	return m.drain()
}

// drain emits every buffered decision the merge position has reached, in
// merged order. Called from feed, and directly after a snapshot jump —
// which may land the cursor on a slot that was already buffered.
func (m *mergeState) drain() []mergedDecision {
	var out []mergedDecision
	for {
		cur := m.cursor()
		v, ok := m.pending[cur][m.expect[cur]]
		if !ok {
			return out
		}
		delete(m.pending[cur], m.expect[cur])
		out = append(out, mergedDecision{id: wire.InstanceID(m.next), value: v})
		m.expect[cur]++
		m.next++
	}
}

// feedSnapshot jumps the merge past an installed snapshot (the boot
// snapshot, or phase 2 of a transferred-snapshot install — by the time it is
// called the snapshot is durably persisted and restored). If it advances the
// merge, every group's position jumps to its share of the covered prefix and
// true is returned. Snapshots at or behind the current merge position are
// stale (the local state already covers them) and are dropped.
func (m *mergeState) feedSnapshot(snap *wire.Snapshot) bool {
	if snap.GroupCount() != m.groups || int64(snap.LastIncluded) < m.next {
		return false
	}
	m.next = int64(snap.LastIncluded) + 1
	for g := range m.expect {
		m.expect[g] = wire.GroupCut(snap.LastIncluded, m.groups, g)
		for id := range m.pending[g] {
			if id < m.expect[g] {
				delete(m.pending[g], id)
			}
		}
	}
	return true
}

// stalled reports that the merge cannot advance (the cursor group's next
// slot is missing) while at least one other group already has decisions
// waiting — the condition under which a leader should pad the cursor group.
func (m *mergeState) stalled() bool {
	cur := m.cursor()
	for g, p := range m.pending {
		if g != cur && len(p) > 0 {
			return true
		}
	}
	return false
}

// mergePadRetry bounds how often a stalled merge re-issues its no-op pad
// while waiting for the padded instance to come back decided.
const mergePadRetry = 5 * time.Millisecond

// runMerger is the Merger thread: it drains the MergeQueue (all groups'
// decision streams), advances the deterministic merge, and feeds the merged
// total order into the DecisionQueue for the ServiceManager. With a single
// ordering group it degenerates to a pass-through. Blocking on a full
// DecisionQueue extends the flow-control chain across the merge stage.
func (r *Replica) runMerger() {
	defer r.wg.Done()
	th := r.profThread("Merger")
	th.Transition(profiling.StateBusy)
	defer th.Transition(profiling.StateOther)

	m := newMergeState(len(r.groups))
	// durableCut is the highest merged index the Merger has WITNESSED as
	// covered by a durably persisted snapshot: the boot snapshot, and every
	// installed marker (markers are only emitted after the ServiceManager's
	// persist). It bounds how far the lost-ack re-nudge below may ask a
	// group to journal a cut — a cut above it might not be covered on disk.
	durableCut := int64(-1)
	if r.bootSnap != nil {
		// Crash-restart recovery: the service was restored from this
		// snapshot before any module started, so merging resumes right
		// after its cut — the same position jump a live snapshot install
		// performs. Each group's Protocol thread re-emits its decided
		// suffix from the matching group-local position.
		m.feedSnapshot(r.bootSnap)
		durableCut = int64(r.bootSnap.LastIncluded)
		for g := range m.expect {
			r.groups[g].mergedUpTo.Store(int64(m.expect[g]))
		}
	}
	// emit delivers merged slots to the ServiceManager and publishes each
	// group's consumed position, which the Protocol threads' merge-backlog
	// gate reads to keep the pending buffers bounded.
	emit := func(ds []mergedDecision) bool {
		for _, d := range ds {
			if err := r.decisionQ.Put(th, decisionItem{id: d.id, value: d.value}); err != nil {
				return false
			}
		}
		if len(ds) > 0 {
			for _, g := range r.groups {
				g.mergedUpTo.Store(int64(m.expect[g.idx]))
			}
		}
		return true
	}
	for {
		var gd groupDecision
		if m.stalled() {
			v, ok, err := r.mergeQ.Poll(th, mergePadRetry)
			if err != nil {
				return
			}
			if !ok {
				// Nothing arrived for a whole retry period while siblings
				// have decisions waiting: the cursor group is genuinely
				// quiet, so pad it (and keep re-padding each period until
				// the stall breaks). Padding on every stalled iteration
				// instead — while sibling decisions stream in — would storm
				// the quiet group with no-ops faster than they can decide.
				r.maybePad(m)
				continue
			}
			gd = v
		} else {
			v, err := r.mergeQ.Take(th)
			if err != nil {
				return
			}
			gd = v
		}

		if snap := gd.item.snapshot; snap != nil && gd.item.installed {
			// Phase 2: a group's installed marker — the ServiceManager
			// persisted and restored this snapshot, and the group
			// journaled its cut. Jump the merge position; duplicate
			// markers from the other groups are stale and drop here
			// (but still witness durability).
			durableCut = max(durableCut, int64(snap.LastIncluded))
			if !m.feedSnapshot(snap) {
				continue
			}
			// Idempotent nudge to every group: any whose install ack
			// was lost (TryPut under pressure) still fast-forwards.
			// Safe — the snapshot is durable, so journaling the cut
			// cannot outrun it.
			for _, g := range r.groups {
				cut := wire.GroupCut(snap.LastIncluded, len(r.groups), g.idx)
				_, _ = g.dispatchQ.TryPut(event{kind: evFastForward, upTo: cut})
				g.mergedUpTo.Store(int64(m.expect[g.idx]))
			}
			// The jump may have landed the cursor on an already-buffered
			// slot; emit everything reachable before blocking again.
			if !emit(m.drain()) {
				return
			}
			continue
		}
		if meta := gd.item.meta; meta != nil {
			// Phase 1: a catch-up snapshot advertised to a group. The merge
			// position does NOT move yet — the ServiceManager must pull the
			// chunked image and persist it first (a pull or persist failure
			// simply means catch-up retries and no state changed anywhere).
			// Forward the announcement downstream; duplicates of an
			// in-flight install are deduplicated by the ServiceManager
			// against its install floor.
			if meta.GroupCount() != len(r.groups) {
				continue
			}
			if int64(meta.LastIncluded) < m.next {
				// Stale: the merge already advanced past this cut. When a
				// WITNESSED durable snapshot covers it (the common cause: a
				// sibling's marker jumped the merge and this group's
				// fast-forward ack was TryPut-lost), re-nudge the
				// originating group — journaling a durably-covered cut is
				// safe, and the group's catch-up retries this until the
				// nudge lands. Without the durability witness (the merge
				// advanced by normal merging after the gap filled), just
				// drop: the group is not wedged, and an unbacked cut could
				// strand a crash with a journal ahead of every snapshot on
				// disk.
				if int64(meta.LastIncluded) <= durableCut {
					cut := wire.GroupCut(meta.LastIncluded, len(r.groups), gd.group)
					_, _ = r.groups[gd.group].dispatchQ.TryPut(event{kind: evFastForward, upTo: cut})
				}
				continue
			}
			if err := r.decisionQ.Put(th, decisionItem{meta: meta}); err != nil {
				return
			}
			continue
		}

		if !emit(m.feed(gd.group, gd.item.id, gd.item.value)) {
			return
		}
	}
}

// maybePad proposes an empty batch in the merge's cursor group when this
// replica leads it: the group has nothing in flight while its siblings have
// decided ahead, so a no-op instance is the cheapest way to fill the slot
// the whole cluster's merge is waiting on. Followers do nothing — the
// group's leader (wherever it is) pads, and the decision reaches everyone.
// This is the reactive safety net behind the proactive alignGroup below; it
// matters mostly when group leadership is split across replicas.
func (r *Replica) maybePad(m *mergeState) {
	g := r.groups[m.cursor()]
	if !g.isLeader.Load() {
		return
	}
	if ok, _ := g.proposalQ.TryPut(wire.EncodeBatch(nil)); ok {
		r.padsProposed.Add(1)
		_, _ = g.dispatchQ.TryPut(event{kind: evProposalReady})
	}
}

// alignGroup keeps the ordering groups' logs advancing in rough lockstep —
// the Mencius-style "skip" that keeps the round-robin merge from waiting a
// consensus round-trip on a group with no traffic. Called by each group's
// Protocol thread after it drains its ProposalQueue: a leader that opened
// new slots publishes the frontier and nudges siblings that have fallen
// behind it; a leader lagging the frontier by more than the slack fills the
// excess with no-op proposals immediately, so the padding's consensus
// round-trip overlaps the real instances' instead of starting after the
// merge has stalled. The slack (two windows plus a scheduler-burst floor,
// see below) absorbs the natural in-flight jitter between evenly loaded
// groups — those never pad; only genuinely idle or starved groups do.
func (r *Replica) alignGroup(g *ordGroup, node *paxos.Node, apply func(paxos.Effects)) {
	if len(r.groups) == 1 {
		return
	}
	// Slack absorbs benign skew so only genuinely starved groups pad: two
	// windows for the natural in-flight difference between evenly loaded
	// groups, plus a floor for scheduler bursts (a Protocol thread that
	// just got the CPU can open tens of slots at once before its siblings
	// run). Padding below that threshold would displace immediately
	// proposable real batches one-for-one and oscillate the groups.
	slack := 2*int64(r.cfg.Window) + 16
	// Publish the frontier from followers too: a group's log advances as it
	// accepts another replica's Proposes, and under split group leadership
	// (views drifted) the local leader of a quiet group must still see the
	// busy groups' frontier to pad against it.
	next := int64(node.Log().Next())
	g.nextSlot.Store(next)
	for {
		cur := r.maxSlot.Load()
		if next <= cur {
			break
		}
		if r.maxSlot.CompareAndSwap(cur, next) {
			// Frontier extended: wake sibling Protocol threads that lag it
			// by more than the slack (a plain proposal-ready nudge re-runs
			// this alignment on their event loop, even when idle).
			for _, h := range r.groups {
				if h != g && next-h.nextSlot.Load() > slack {
					_, _ = h.dispatchQ.TryPut(event{kind: evProposalReady})
				}
			}
			break
		}
	}
	if !node.IsLeader() {
		return
	}
	// Cap the pads per pass: catching up gradually keeps window slots
	// available for real batches that arrive mid-catch-up, and the next
	// event (each pad's own decision, a nudge, a heartbeat) re-runs this,
	// so a truly idle group still pads at the busy groups' full rate.
	for pads := 0; pads < 4 && int64(node.Log().Next())+slack < r.maxSlot.Load() && node.WindowOpen(); pads++ {
		e, ok := node.ProposeBatch(wire.EncodeBatch(nil))
		if !ok {
			break
		}
		r.padsProposed.Add(1)
		apply(e)
	}
	g.nextSlot.Store(int64(node.Log().Next()))
}
