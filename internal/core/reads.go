package core

import (
	"sync"
	"sync/atomic"
	"time"

	"gosmr/internal/profiling"
	"gosmr/internal/queue"
	"gosmr/internal/wire"
)

// The read path (reads.go + lease.go) serves read-only requests without
// ordering them through the log:
//
//   - On the leaseholder: check the lease, snapshot the read frontier (the
//     first merged index not yet known decided), wait until local execution
//     covers everything below it, execute against the service, reply.
//   - On a follower: batch waiting reads behind ONE ReadIndexQuery to the
//     leaseholder; its ReadIndexResp carries the frontier, and the reads
//     execute locally once the follower's own execution passes it.
//
// Any read the replica cannot serve — leases disabled, lease lost, the
// leaseholder unreachable — is bounced with an !OK reply and the client
// falls back to an ordered Execute, which is always correct.
//
// Reads execute on the ReadManager (or ServiceManager) thread concurrently
// with the execution stage, so the Service must tolerate concurrent Execute
// calls for read-only requests (the bundled KV store does; see gosmr.Config
// documentation).

// readReq is one in-flight client read.
type readReq struct {
	req *wire.ClientRead // retained; released when replied
	cc  *clientConn
}

// readEvent is one ReadManager queue item.
type readEvent struct {
	kind  uint8
	req   *wire.ClientRead // rSubmit
	cc    *clientConn      // rSubmit
	seq   uint64           // rResp, rTimer: read-index round
	index wire.InstanceID  // rResp
	ok    bool             // rResp
}

const (
	rSubmit uint8 = iota + 1
	rResp
	rTimer
)

// readMgr is the ReadManager module: one goroutine owning all read-path
// state, fed by ClientIO workers (submissions) and ReplicaIO readers
// (read-index responses).
type readMgr struct {
	r *Replica
	q *queue.Bounded[readEvent]

	pending  []readReq            // follower reads awaiting the next index query
	inflight map[uint64][]readReq // rounds awaiting a ReadIndexResp
	querySeq uint64
}

func newReadMgr(r *Replica) *readMgr {
	return &readMgr{
		r:        r,
		q:        queue.NewBounded[readEvent]("ReadQueue", r.cfg.RequestQueueCap),
		inflight: make(map[uint64][]readReq),
	}
}

// deliverResp hands a ReadIndexResp from a ReplicaIO reader to the manager.
// Best-effort: a drop times the round out and the clients fall back.
func (m *readMgr) deliverResp(seq uint64, index wire.InstanceID, ok bool) {
	_, _ = m.q.TryPut(readEvent{kind: rResp, seq: seq, index: index, ok: ok})
}

// run is the ReadManager thread body.
func (m *readMgr) run() {
	defer m.r.wg.Done()
	th := m.r.profThread("ReadManager")
	th.Transition(profiling.StateBusy)
	defer th.Transition(profiling.StateOther)
	for {
		ev, err := m.q.Take(th)
		if err != nil {
			return
		}
		switch ev.kind {
		case rSubmit:
			m.handleSubmit(readReq{req: ev.req, cc: ev.cc})
		case rResp:
			m.handleResp(ev.seq, ev.index, ev.ok)
		case rTimer:
			if rr, ok := m.inflight[ev.seq]; ok {
				delete(m.inflight, ev.seq)
				m.fail(rr)
			}
			m.launchQuery()
		}
	}
}

// handleSubmit routes one read: stable reads execute immediately against
// local state; linearizable reads take the lease path (leader) or the
// read-index path (follower).
func (m *readMgr) handleSubmit(rr readReq) {
	r := m.r
	if rr.req.Consistency == wire.ReadStable {
		m.serve([]readReq{rr})
		return
	}
	if !r.leases.enabled {
		m.fail([]readReq{rr})
		return
	}
	if r.IsLeader() && r.leaseValid(time.Now()) {
		// Order matters: validate the lease FIRST, then snapshot the
		// frontier — the frontier can only grow, so a frontier read after
		// the validity check covers everything decided at the moment the
		// lease was known valid (the read's linearization point).
		target := int64(r.readFrontier()) - 1
		reads := []readReq{rr}
		r.registerApplied(target, func() { m.serve(reads) })
		return
	}
	m.pending = append(m.pending, rr)
	m.launchQuery()
}

// launchQuery sends one ReadIndexQuery covering every pending read, keeping
// at most one round outstanding so concurrent reads coalesce behind it.
func (m *readMgr) launchQuery() {
	if len(m.pending) == 0 || len(m.inflight) > 0 {
		return
	}
	r := m.r
	leader := int(r.groups[0].leaderHint.Load())
	if leader == r.cfg.ID || !r.topo.Load().Active(leader) {
		// This replica believes it leads but the lease is not valid (or
		// leadership is in flux): bounce to the ordered path.
		rr := m.pending
		m.pending = nil
		m.fail(rr)
		return
	}
	m.querySeq++
	seq := m.querySeq
	m.inflight[seq] = m.pending
	m.pending = nil
	r.enqueueSend(leader, &wire.ReadIndexQuery{Seq: seq})
	// Expire the round if the leaseholder never answers; the retry keeps
	// re-arming if the nudge races a full queue, so a round can never wedge
	// the single-outstanding-query slot.
	timeout := r.cfg.RetransPeriod
	var expire func()
	expire = func() {
		if ok, err := m.q.TryPut(readEvent{kind: rTimer, seq: seq}); !ok && err == nil {
			time.AfterFunc(timeout, expire)
		}
	}
	time.AfterFunc(timeout, expire)
}

// handleResp completes one read-index round: wait for local execution to
// pass the returned frontier, then serve the round's reads.
func (m *readMgr) handleResp(seq uint64, index wire.InstanceID, ok bool) {
	rr, found := m.inflight[seq]
	if !found {
		return // stale response for a round that already timed out
	}
	delete(m.inflight, seq)
	if !ok {
		m.fail(rr)
	} else {
		reads := rr
		m.r.registerApplied(int64(index)-1, func() { m.serve(reads) })
	}
	m.launchQuery()
}

// serve executes a batch of reads against the local service and replies.
// Runs on the ReadManager thread (fast path: the applied watermark already
// covers the target) or the ServiceManager thread (a waiter fired).
func (m *readMgr) serve(rr []readReq) {
	r := m.r
	for _, x := range rr {
		payload := r.svc.Execute(x.req.Payload)
		r.localReads.Add(1)
		m.reply(x, true, wire.NoRedirect, payload)
	}
}

// fail bounces a batch of reads; the !OK reply makes the clients fall back
// to an ordered Execute.
func (m *readMgr) fail(rr []readReq) {
	leader := m.r.groups[0].leaderHint.Load()
	for _, x := range rr {
		m.reply(x, false, leader, nil)
	}
}

func (m *readMgr) reply(x readReq, ok bool, redirect int32, payload []byte) {
	out := wire.NewClientReply()
	out.ClientID, out.Seq = x.req.ClientID, x.req.Seq
	out.OK, out.Redirect, out.Payload = ok, redirect, payload
	if sent, _ := x.cc.replies.TryPut(out); sent {
		m.r.repliesSent.Add(1)
	} else {
		wire.Release(out)
	}
	wire.Release(x.req)
}

// applyWaiters is the ServiceManager's applied-index waiter registry: reads
// park here until local execution has fully covered their target merged
// index. `completed` only advances after the executor is quiesced, so a
// fired waiter observes every effect of every request at or below its
// target. The atomic count keeps the no-waiters common case to one atomic
// load on the decision hot path.
type applyWaiters struct {
	count     atomic.Int32
	mu        sync.Mutex
	completed int64
	waiters   []applyWaiter
}

type applyWaiter struct {
	target int64
	fn     func()
}

// takeFiredLocked splits off every waiter at or below the completed
// watermark. Callers fire the returned funcs after unlocking.
func (w *applyWaiters) takeFiredLocked() []func() {
	if len(w.waiters) == 0 {
		return nil
	}
	var fire []func()
	keep := w.waiters[:0]
	for _, wt := range w.waiters {
		if wt.target <= w.completed {
			fire = append(fire, wt.fn)
		} else {
			keep = append(keep, wt)
		}
	}
	w.waiters = keep
	w.count.Store(int32(len(keep)))
	return fire
}

// registerApplied calls fn once every merged index at or below target has
// been executed locally. Fires inline when already satisfied, otherwise from
// the ServiceManager thread; fn must not block.
func (r *Replica) registerApplied(target int64, fn func()) {
	w := &r.applied
	w.mu.Lock()
	if target <= w.completed {
		w.mu.Unlock()
		fn()
		return
	}
	w.waiters = append(w.waiters, applyWaiter{target: target, fn: fn})
	w.count.Store(int32(len(w.waiters)))
	w.mu.Unlock()
	// Nudge an idle ServiceManager: if its position already covers the
	// target it only needs to quiesce and publish. Best-effort — a busy
	// manager re-checks after every decision anyway.
	_, _ = r.decisionQ.TryPut(decisionItem{id: -1})
}

// serveApplied (ServiceManager thread only) wakes reads whose target the
// manager's position has reached: quiesce the workers — a scheduled request
// is not necessarily executed yet — publish the watermark, fire.
func (r *Replica) serveApplied(th *profiling.Thread, position int64) {
	w := &r.applied
	if w.count.Load() == 0 {
		return
	}
	w.mu.Lock()
	due := false
	for _, wt := range w.waiters {
		if wt.target <= position {
			due = true
			break
		}
	}
	w.mu.Unlock()
	if !due {
		return
	}
	r.exec.Quiesce(th)
	w.mu.Lock()
	if position > w.completed {
		w.completed = position
	}
	fire := w.takeFiredLocked()
	w.mu.Unlock()
	for _, fn := range fire {
		fn()
	}
}

// bumpApplied advances the watermark directly after a snapshot install (the
// restore already quiesced the workers and covers everything below it).
func (r *Replica) bumpApplied(upTo int64) {
	w := &r.applied
	w.mu.Lock()
	if upTo > w.completed {
		w.completed = upTo
	}
	fire := w.takeFiredLocked()
	w.mu.Unlock()
	for _, fn := range fire {
		fn()
	}
}
