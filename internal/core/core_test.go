package core

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"gosmr/internal/profiling"
	"gosmr/internal/service"
	"gosmr/internal/transport"
	"gosmr/internal/wire"
)

func TestConfigValidation(t *testing.T) {
	tests := []struct {
		name string
		cfg  Config
	}{
		{"no peers", Config{ID: 0, ClientAddr: "c"}},
		{"bad id", Config{ID: 3, PeerAddrs: []string{"a", "b", "c"}, ClientAddr: "c"}},
		{"negative id", Config{ID: -1, PeerAddrs: []string{"a"}, ClientAddr: "c"}},
		{"no client addr", Config{ID: 0, PeerAddrs: []string{"a"}}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := NewReplica(tt.cfg, &service.Null{}); err == nil {
				t.Error("invalid config accepted")
			}
		})
	}
	if _, err := NewReplica(Config{ID: 0, PeerAddrs: []string{"a"}, ClientAddr: "c"}, nil); err == nil {
		t.Error("nil service accepted")
	}
}

func TestConfigDefaults(t *testing.T) {
	cfg := Config{}.withDefaults()
	if cfg.ClientIOWorkers != 4 || cfg.Window != 10 ||
		cfg.RequestQueueCap != 1000 || cfg.ProposalQueueCap != 20 {
		t.Errorf("defaults = %+v", cfg)
	}
}

func TestClientRegistry(t *testing.T) {
	r := newClientRegistry()
	ccA := &clientConn{}
	ccB := &clientConn{}
	r.set(7, ccA)
	if got := r.get(7); got != ccA {
		t.Fatalf("get = %p, want %p", got, ccA)
	}
	// Reconnect overwrites the binding; dropping the old conn is a no-op.
	r.set(7, ccB)
	r.drop(7, ccA)
	if got := r.get(7); got != ccB {
		t.Fatalf("get after stale drop = %p, want %p", got, ccB)
	}
	r.drop(7, ccB)
	if got := r.get(7); got != nil {
		t.Fatalf("get after drop = %p, want nil", got)
	}
}

func TestSnapshotStore(t *testing.T) {
	var s snapshotStore
	if _, ok := s.get(); ok {
		t.Error("empty store reported a snapshot")
	}
	s.put(wire.Snapshot{LastIncluded: 9})
	snap, ok := s.get()
	if !ok || snap.LastIncluded != 9 {
		t.Errorf("get = %+v %v", snap, ok)
	}
}

// startReplica boots a single-node replica over inproc for module tests.
func startReplica(t *testing.T, net transport.Network, profile *profiling.Registry) *Replica {
	t.Helper()
	r, err := NewReplica(Config{
		ID:         0,
		PeerAddrs:  []string{"solo-peer"},
		ClientAddr: "solo-client",
		Network:    net,
		Batch:      batchPolicy(),
		Profiling:  profile,
	}, service.NewKV())
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(r.Stop)
	// A solo replica leads as soon as Phase 1 completes; wait for it so
	// requests sent right away are accepted instead of redirected.
	waitLeader(t, r)
	return r
}

func batchPolicy() (p struct {
	MaxBytes int
	MaxDelay time.Duration
}) {
	p.MaxBytes = 1300
	p.MaxDelay = time.Millisecond
	return p
}

func TestSingleReplicaPipelineAndProfiling(t *testing.T) {
	net := transport.NewInproc(0)
	reg := profiling.NewRegistry()
	r, err := NewReplica(Config{
		ID:         0,
		PeerAddrs:  []string{"solo-peer"},
		ClientAddr: "solo-client",
		Network:    net,
		Profiling:  reg,
	}, service.NewKV())
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Start(); err != nil {
		t.Fatal(err)
	}
	defer r.Stop()
	if err := r.Start(); err == nil {
		t.Error("double Start accepted")
	}
	waitLeader(t, r)

	// Raw wire-level client: send one request, expect an OK reply.
	conn, err := net.Dial("solo-client")
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	req := &wire.ClientRequest{ClientID: 11, Seq: 1, Payload: service.EncodePut("k", []byte("v"))}
	if err := conn.WriteFrame(wire.Marshal(req)); err != nil {
		t.Fatal(err)
	}
	frame, err := conn.ReadFrame()
	if err != nil {
		t.Fatal(err)
	}
	msg, err := wire.Unmarshal(frame)
	if err != nil {
		t.Fatal(err)
	}
	reply, ok := msg.(*wire.ClientReply)
	if !ok || !reply.OK || reply.Seq != 1 {
		t.Fatalf("reply = %+v", msg)
	}
	if r.Executed() != 1 {
		t.Errorf("Executed = %d, want 1", r.Executed())
	}

	// The paper's thread set is registered with the profiler.
	names := make(map[string]bool)
	for _, st := range reg.Snapshot() {
		names[st.Name] = true
	}
	for _, want := range []string{"Protocol", "Batcher", "Replica", "ClientIO-0",
		"FailureDetector", "Retransmitter"} {
		if !names[want] {
			t.Errorf("thread %q not registered (have %v)", want, names)
		}
	}

	// Queue stats cover the Fig. 3 queues.
	stats := r.QueueStats()
	for _, q := range []string{"RequestQueue", "ProposalQueue", "DispatcherQueue", "DecisionQueue"} {
		if _, ok := stats[q]; !ok {
			t.Errorf("QueueStats missing %s", q)
		}
	}
	r.ResetQueueStats()
}

func TestDuplicateRequestServedFromReplyCache(t *testing.T) {
	net := transport.NewInproc(0)
	r := startReplica(t, net, nil)

	conn, err := net.Dial("solo-client")
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	req := wire.Marshal(&wire.ClientRequest{ClientID: 5, Seq: 1, Payload: service.EncodePut("dup", []byte("x"))})
	for range 3 { // original + 2 retries of the same (client, seq)
		if err := conn.WriteFrame(req); err != nil {
			t.Fatal(err)
		}
		frame, err := conn.ReadFrame()
		if err != nil {
			t.Fatal(err)
		}
		msg, _ := wire.Unmarshal(frame)
		reply := msg.(*wire.ClientReply)
		if !reply.OK {
			t.Fatalf("reply not OK: %+v", reply)
		}
	}
	if got := r.Executed(); got != 1 {
		t.Errorf("Executed = %d, want 1 (duplicates suppressed)", got)
	}
}

func TestMalformedClientFramesIgnored(t *testing.T) {
	net := transport.NewInproc(0)
	r := startReplica(t, net, nil)
	conn, err := net.Dial("solo-client")
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// Garbage, a non-request message, then a valid request: the pipeline
	// must survive and answer the valid one.
	_ = conn.WriteFrame([]byte{0xFF, 0x01, 0x02})
	_ = conn.WriteFrame(wire.Marshal(&wire.Heartbeat{View: 1}))
	_ = conn.WriteFrame(wire.Marshal(&wire.ClientRequest{ClientID: 9, Seq: 1, Payload: service.EncodeGet("nope")}))
	frame, err := conn.ReadFrame()
	if err != nil {
		t.Fatal(err)
	}
	msg, _ := wire.Unmarshal(frame)
	if reply, ok := msg.(*wire.ClientReply); !ok || !reply.OK {
		t.Fatalf("reply = %+v", msg)
	}
	_ = r
}

func TestFollowerRedirectsClients(t *testing.T) {
	net := transport.NewInproc(0)
	peers := []string{"ra", "rb", "rc"}
	var reps []*Replica
	for i := range 3 {
		r, err := NewReplica(Config{
			ID: i, PeerAddrs: peers, ClientAddr: fmt.Sprintf("ca-%d", i), Network: net,
		}, &service.Null{})
		if err != nil {
			t.Fatal(err)
		}
		if err := r.Start(); err != nil {
			t.Fatal(err)
		}
		defer r.Stop()
		reps = append(reps, r)
	}
	// Wait until replica 0 establishes leadership.
	deadline := time.Now().Add(5 * time.Second)
	for !reps[0].IsLeader() && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if !reps[0].IsLeader() {
		t.Fatal("replica 0 never led")
	}
	// A request to follower 1 must be redirected to replica 0.
	conn, err := net.Dial("ca-1")
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := conn.WriteFrame(wire.Marshal(&wire.ClientRequest{ClientID: 3, Seq: 1})); err != nil {
		t.Fatal(err)
	}
	frame, err := conn.ReadFrame()
	if err != nil {
		t.Fatal(err)
	}
	msg, _ := wire.Unmarshal(frame)
	reply, ok := msg.(*wire.ClientReply)
	if !ok || reply.OK || reply.Redirect != 0 {
		t.Fatalf("reply = %+v, want redirect to 0", msg)
	}
}

func TestStopIsIdempotentAndUnblocks(t *testing.T) {
	net := transport.NewInproc(0)
	r := startReplica(t, net, nil)
	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(2)
	for range 2 {
		go func() {
			defer wg.Done()
			r.Stop()
		}()
	}
	go func() {
		wg.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("concurrent Stop calls did not return")
	}
}

func TestPeerLink(t *testing.T) {
	l := newPeerLink(1)
	if !l.disconnected() {
		t.Error("fresh link not disconnected")
	}
	net := transport.NewInproc(0)
	lst, err := net.Listen("x")
	if err != nil {
		t.Fatal(err)
	}
	defer lst.Close()
	go func() {
		for {
			if _, err := lst.Accept(); err != nil {
				return
			}
		}
	}()
	c1, _ := net.Dial("x")
	c2, _ := net.Dial("x")
	l.set(c1)
	conn, gen, ok := l.get()
	if !ok || conn != c1 {
		t.Fatalf("get = %v %d %v", conn, gen, ok)
	}
	// Stale fail (wrong generation) is ignored.
	l.fail(gen - 1)
	if l.disconnected() {
		t.Error("stale fail dropped the connection")
	}
	// Real fail drops it; set installs the replacement and bumps gen.
	l.fail(gen)
	if !l.disconnected() {
		t.Error("fail did not drop the connection")
	}
	l.set(c2)
	_, gen2, ok := l.get()
	if !ok || gen2 <= gen {
		t.Fatalf("generation did not advance: %d -> %d", gen, gen2)
	}
	// close unblocks waiters permanently.
	l.close()
	if _, _, ok := l.get(); ok {
		t.Error("get succeeded after close")
	}
	// Frame writes on the closed conn fail.
	if err := c2.WriteFrame([]byte("x")); !errors.Is(err, transport.ErrConnClosed) {
		t.Logf("WriteFrame after close = %v (transport-specific)", err)
	}
}
