package core

import (
	"fmt"

	"gosmr/internal/executor"
	"gosmr/internal/profiling"
	"gosmr/internal/replycache"
	"gosmr/internal/snapshot"
	"gosmr/internal/wire"
)

// schedEntry is the scheduler's per-client at-most-once record: the highest
// sequence number scheduled so far and the worker its execution was
// dispatched to (executor.Inline for inline/global execution and entries
// rebuilt from a snapshot).
type schedEntry struct {
	seq    uint64
	worker int
}

// runServiceManager is the ServiceManager module's thread (Sec. V-D; the
// paper's profiles label it "Replica"). It drains the DecisionQueue in log
// order and acts as the execution scheduler: each request is classified for
// at-most-once semantics and handed to the executor, which either runs it
// inline (sequential fallback — the paper's original single-threaded design)
// or dispatches it to a conflict-keyed worker goroutine so independent
// requests execute concurrently. Snapshot points quiesce the workers first,
// so a snapshot always captures a state equivalent to a serial prefix of the
// log.
func (r *Replica) runServiceManager() {
	defer r.wg.Done()
	// The scheduler owns executor shutdown: it is the only goroutine that
	// submits, so stopping from here (after the DecisionQueue drains) can
	// never race with a submit — see Replica.Stop.
	defer r.exec.Stop()
	// An in-flight background drain owns the snapshot chain and disk
	// layout; wait for it so shutdown never abandons a half-written
	// generation that the next commit would then reference.
	defer r.awaitDrain()
	th := r.profThread("Replica")
	th.Transition(profiling.StateBusy)
	defer th.Transition(profiling.StateOther)

	// reqScratch is the deliver path's reused decode storage: the slice
	// cycles across batches and the request structs come from the shared
	// pool, released by whichever execution path finishes with each one.
	// Payloads borrow from the batch value, which the replicated log owns
	// and never mutates.
	var reqScratch []*wire.ClientRequest
	// floor is the merged index of the newest installed snapshot: decisions
	// at or below it arrive only in the window between this thread's restore
	// and the Merger's position jump (the two-phase install is asynchronous)
	// and are already part of the restored state — re-scheduling them would
	// at best resend cached replies and at worst cut a mislabeled snapshot.
	floor := int64(-1)
	if r.bootSnap != nil {
		floor = int64(r.bootSnap.LastIncluded)
	}
	// position is the merged index this thread has fully scheduled; the
	// applied-waiter registry (reads.go) publishes it as `completed` once the
	// executor quiesces, which is what lease/follower reads wait on.
	position := floor
	for {
		item, err := r.decisionQ.Take(th)
		if err != nil {
			return
		}
		if item.meta != nil {
			floor = r.installFromMeta(th, item.meta, floor)
			if floor > position {
				position = floor
			}
			r.bumpApplied(floor)
			continue
		}
		if item.id < 0 {
			// registerApplied's wake-up nudge: no decision to process, just
			// re-check the waiters against the current position.
			r.serveApplied(th, position)
			continue
		}
		if int64(item.id) <= floor {
			continue // covered by an installed snapshot
		}
		reqs, err := wire.DecodeBatchInto(reqScratch, item.value)
		if err != nil {
			continue // corrupt batch cannot happen with our own leader; skip
		}
		reqScratch = reqs
		if len(reqs) > 0 {
			r.decidedMerged.Add(1)
		}
		if len(reqs) == 1 && reqs[0].ClientID == wire.ConfigClientID {
			// A configuration command, ordered like any batch: its merged
			// index is the deterministic reconfiguration point. It never
			// reaches the executor or the reply cache — adopting the
			// topology IS its execution, identically on every replica.
			r.applyReconfig(reqs[0].Payload)
			wire.Release(reqs[0])
			reqs[0] = nil
			position = int64(item.id)
			r.maybeSnapshot(th, item.id)
			r.serveApplied(th, position)
			continue
		}
		for i, req := range reqs {
			r.scheduleOne(th, req)
			reqs[i] = nil
		}
		position = int64(item.id)
		r.maybeSnapshot(th, item.id)
		r.serveApplied(th, position)
	}
}

// scheduleOne classifies one decided request and dispatches it. The
// classification (execute / resend cached reply / drop as stale) is a pure
// function of the log prefix — the scheduler sees the log in order on every
// replica and keeps its own table — so all replicas make identical
// decisions regardless of how worker execution interleaves. (Classifying at
// execution time against the shared reply cache would be racy under
// parallel execution: a client's seq n+1 on one worker could outrun its seq
// n on another and flip n's status on some replicas but not others.)
func (r *Replica) scheduleOne(th *profiling.Thread, req *wire.ClientRequest) {
	last, seen := r.execSeq[req.ClientID]
	switch {
	case !seen || req.Seq > last.seq:
		// New request: execute. Record the worker so a later duplicate can
		// be ordered behind this execution. The executed closure owns the
		// pooled request struct and releases it when done — in inline mode
		// that happens during Submit, so the scheduler reads its copy of
		// the identity fields, never the struct, afterwards.
		clientID, seq := req.ClientID, req.Seq
		w := r.exec.Submit(th, req.Payload, func(wth *profiling.Thread) {
			r.executeNew(wth, req)
			wire.Release(req)
		})
		r.execSeq[clientID] = schedEntry{seq: seq, worker: w}
	case req.Seq == last.seq:
		// Duplicate of the client's most recent request (e.g. a retry that
		// got ordered twice): do not re-execute; resend the cached reply,
		// ordered behind the original execution on its worker.
		r.exec.SubmitTo(th, last.worker, func(wth *profiling.Thread) {
			r.resendCached(wth, req)
			wire.Release(req)
		})
	default:
		// Stale: older than the client's most recent request. The reply is
		// gone; ignore.
		wire.Release(req)
	}
}

// executeNew applies a request the scheduler classified as new and routes
// the reply. It runs on the ServiceManager thread in sequential mode and on
// executor workers in parallel mode; everything it touches is safe for that
// (sharded reply cache, atomic counters, lock-free registry reads,
// non-blocking reply enqueue). Reply-cache updates from the same client's
// consecutive requests may race across workers, but Update keeps the
// highest sequence number, so every replica converges to the same cache.
func (r *Replica) executeNew(th *profiling.Thread, req *wire.ClientRequest) {
	reply := r.svc.Execute(req.Payload)
	r.replyCache.Update(th, req.ClientID, req.Seq, reply)
	r.executed.Add(1)
	r.sendReply(req, reply)
}

// resendCached re-sends the reply of an already-executed request. Scheduled
// behind the original execution, so the cache normally holds it; a later
// request from the same client may have overwritten it meanwhile, in which
// case the client has moved on and nothing needs sending.
func (r *Replica) resendCached(th *profiling.Thread, req *wire.ClientRequest) {
	reply, status := r.replyCache.Lookup(th, req.ClientID, req.Seq)
	if status != replycache.StatusCached {
		return
	}
	r.sendReply(req, reply)
}

// sendReply hands a reply to the ClientIO writer of the connection owning
// the client, if it is connected here.
func (r *Replica) sendReply(req *wire.ClientRequest, reply []byte) {
	cc := r.registry.get(req.ClientID)
	if cc == nil {
		return // client not connected here (we may be a follower)
	}
	out := wire.NewClientReply()
	out.ClientID, out.Seq = req.ClientID, req.Seq
	out.OK, out.Redirect, out.Payload = true, wire.NoRedirect, reply
	if ok, _ := cc.replies.TryPut(out); ok {
		r.repliesSent.Add(1)
	} else {
		wire.Release(out)
	}
}

// installFromMeta handles a snapshot announcement from the Merger: the
// replica is too far behind for log or WAL catch-up, and a peer advertised
// a snapshot it should install. The snapshot no longer arrives inline —
// only its metadata did; this pulls the image from peers one bounded,
// offset-addressed frame at a time (resumable across restarts and
// reconnects, see snaptransfer.go), then runs the install. The pull is
// synchronous on this thread: a replica this far behind has nothing better
// to do, and responses arrive via the reader threads, so nothing deadlocks.
// Pull failure refuses the install with nothing changed; the requesting
// group's catch-up timer re-surfaces the metadata and the pull resumes from
// the staged prefix.
//
// An announcement at or below the current floor is a duplicate from a
// catch-up retry: the state is already installed and durable, so only the
// acks are resent — healing any group whose fast-forward nudge was lost.
func (r *Replica) installFromMeta(th *profiling.Thread, meta *wire.SnapshotMeta, floor int64) int64 {
	if int64(meta.LastIncluded) <= floor {
		if snap, ok := r.snapshots.get(); ok && int64(snap.LastIncluded) >= int64(meta.LastIncluded) {
			r.sendInstallAcks(&snap)
		}
		return floor
	}
	snap, err := r.pullSnapshot(*meta)
	if err != nil {
		r.snapshotFailure("pulling transferred snapshot", meta.LastIncluded, err)
		return floor
	}
	return r.installSnapshot(th, snap, floor)
}

// installSnapshot is phase 2 of the transferred-snapshot install: persist
// FIRST, then restore, then ack. The ordering is the crash-consistency
// invariant — no group journals its cut (that happens only on the
// evFastForward ack this sends) until the snapshot covering that cut is
// durably committed, now at manifest granularity: chunk files land first,
// the manifest rename is the commit point, so a kill at ANY chunk boundary
// of the install reboots cleanly from the DataDir. On persist failure the
// install is refused outright: nothing restored, no acks, no state changed
// anywhere; catch-up retries. Workers are quiesced before the restore so no
// in-flight execution observes the swap, and the scheduler's at-most-once
// table is rebuilt from the restored reply cache (with Inline workers:
// those executions are part of the snapshot, so nothing needs ordering
// behind them).
func (r *Replica) installSnapshot(th *profiling.Thread, snap *wire.Snapshot, floor int64) int64 {
	if int64(snap.LastIncluded) <= floor {
		r.sendInstallAcks(snap)
		return floor
	}
	// The drainer shares the chain and disk layout; an install replaces
	// both, so wait it out first.
	r.awaitDrain()
	crashPoint("transfer-install")
	r.exec.Quiesce(th)
	if err := r.persistTransferred(*snap); err != nil {
		r.snapshotFailure("persisting transferred snapshot", snap.LastIncluded, err)
		r.maybeShrinkWAL(err)
		return floor
	}
	crashPoint("transfer-persisted")
	if err := r.restoreFromSnapshot(*snap); err != nil {
		r.snapshotFailure("restoring transferred snapshot", snap.LastIncluded, err)
		return floor
	}
	r.forceFull = false
	r.stateTransfers.Add(1)
	r.sendInstallAcks(snap)
	return int64(snap.LastIncluded)
}

// sendInstallAcks releases every group's fast-forward past a durably
// installed snapshot. Best-effort per group (TryPut): the Merger re-nudges
// all groups when the first marker jumps it, and a duplicate install
// request from the requester's catch-up retry resends the acks, so a lost
// nudge heals instead of wedging the group behind the cut.
func (r *Replica) sendInstallAcks(snap *wire.Snapshot) {
	for _, g := range r.groups {
		cut := wire.GroupCut(snap.LastIncluded, len(r.groups), g.idx)
		_, _ = g.dispatchQ.TryPut(event{kind: evFastForward, upTo: cut, snap: snap})
	}
}

// maybeSnapshot cuts a service snapshot every SnapshotEvery merged
// instances. The executor is quiesced just long enough to mark the cut and
// marshal the reply cache — all requests up to and including merged index
// executedID have finished, none beyond it have been dispatched, so the cut
// is exactly the serial state after executedID — then workers resume while
// a drainer goroutine packs chunks, publishes the assembled snapshot, and
// commits it to disk (which is what triggers log truncation; see runDrain).
// Every replica cuts at the same merged indices with the same cluster-wide
// full/delta cadence, so snapshots stay byte-identical cluster-wide.
func (r *Replica) maybeSnapshot(th *profiling.Thread, executedID wire.InstanceID) {
	every := r.cfg.SnapshotEvery
	if every <= 0 || (int64(executedID)+1)%int64(every) != 0 {
		return
	}
	// If the previous interval's drain is somehow still running, block on
	// it rather than skip: every replica must cut at every point (a skipped
	// cut here would diverge the delta chains cluster-wide).
	r.awaitDrain()
	full := r.forceFull || len(r.snapChain) == 0 || r.fullCutDue(executedID)
	r.exec.Quiesce(th)
	src, isFull, err := r.cutSource(full)
	if err != nil {
		r.snapshotFailure("cutting snapshot", executedID, err)
		r.forceFull = true // this cut is missing from the chain
		return
	}
	r.forceFull = false
	rc := r.replyCache.Marshal()
	// Stamp the cut with the ServiceManager's log-ordered topology: every
	// replica cutting at this merged index has applied exactly the same
	// config commands, so the stamp is deterministic. Epoch 0 stamps nothing,
	// keeping legacy images byte-identical.
	var topo []byte
	if r.smTopo != nil && r.smTopo.Epoch > 0 {
		topo = wire.EncodeTopology(r.smTopo)
	}
	job := &drainJob{done: make(chan struct{})}
	r.drain = job
	go r.runDrain(job, src, executedID, isFull, rc, topo)
}

// restoreFromSnapshot replaces service, reply-cache, and execution-scheduler
// state from snap, and publishes it for catch-up responders — the one
// sequence shared by live snapshot installs and crash-restart boot, so both
// paths rebuild byte-identical state (restart determinism depends on it).
// The service state is a generation chain: a chunk-contract service
// restores it directly (oldest full generation, deltas overlaid); a plain
// blob service gets the joined chunks of its single full generation, and a
// chain with deltas for such a service is refused as corrupt. The restored
// chain also seeds the in-memory chain, so the next delta cut extends it.
// Entries rebuilt from a snapshot carry executor.Inline: those executions
// are part of the snapshot, so nothing needs ordering behind them.
func (r *Replica) restoreFromSnapshot(snap wire.Snapshot) error {
	gens, err := snapshot.DecodeChain(snap.ServiceState)
	if err != nil {
		return fmt.Errorf("core: decode snapshot chain: %w", err)
	}
	if c, ok := r.svc.(snapshot.Cutter); ok {
		if err := c.RestoreChunks(gens); err != nil {
			return fmt.Errorf("core: restore service from snapshot chain: %w", err)
		}
	} else {
		if len(gens) == 0 || !gens[len(gens)-1].Full {
			return fmt.Errorf("core: snapshot chain has delta generations but the service has no chunk contract")
		}
		if err := r.svc.Restore(snapshot.JoinChunks(gens[len(gens)-1].Chunks)); err != nil {
			return fmt.Errorf("core: restore service from snapshot: %w", err)
		}
	}
	if err := r.replyCache.Restore(snap.ReplyCache); err != nil {
		return fmt.Errorf("core: restore reply cache from snapshot: %w", err)
	}
	r.execSeq = make(map[uint64]schedEntry)
	for client, seq := range r.replyCache.LastSeqs() {
		r.execSeq[client] = schedEntry{seq: seq, worker: executor.Inline}
	}
	chain := make([]memGen, len(gens))
	for i, g := range gens {
		chain[i] = memGen{full: g.Full, chunks: g.Chunks}
	}
	r.snapChain = chain
	r.snapshots.put(snap)
	if len(snap.Topo) > 0 {
		// The image was cut under an epoch-stamped topology; adopt it (a
		// no-op unless it is newer than what this replica already knows —
		// the case where a lagging replica crosses a reconfiguration point
		// via state transfer instead of replaying the config command).
		if t, err := wire.DecodeTopology(snap.Topo); err == nil {
			// Only advance: a snapshot never carries an epoch older than the
			// config commands already applied (installs only move the state
			// forward), but a same-epoch stamp must not overwrite smTopo —
			// the first topology installed for an epoch is the epoch's truth.
			if r.smTopo == nil || t.Epoch > r.smTopo.Epoch {
				r.smTopo = t
			}
			r.adoptTopology(t, "snapshot")
		} else {
			return fmt.Errorf("core: decode snapshot topology: %w", err)
		}
	}
	return nil
}

// persistTransferred durably commits a transferred snapshot's whole chain
// (chunk files, then the manifest rename) when durability is enabled. A nil
// result means journaling cuts covered by snap is safe: with no DataDir
// there is nothing on disk to contradict, and with one the commit landed.
func (r *Replica) persistTransferred(snap wire.Snapshot) error {
	if r.snapDisk == nil {
		return nil
	}
	gens, err := snapshot.DecodeChain(snap.ServiceState)
	if err != nil {
		return fmt.Errorf("core: decode snapshot chain: %w", err)
	}
	return r.snapDisk.replaceChain(snap.LastIncluded, snap.Groups,
		gens, snapshot.SplitBlob(snap.ReplyCache, r.cfg.SnapshotChunkBytes), snap.Topo)
}
