package core

import (
	"gosmr/internal/profiling"
	"gosmr/internal/replycache"
	"gosmr/internal/wire"
)

// runServiceManager is the ServiceManager module's thread (Sec. V-D; the
// paper's profiles label it "Replica"). It drains the DecisionQueue in log
// order, executes each request exactly once against the service, updates
// the reply cache, and hands replies to the ClientIO writer of the
// connection owning each client. Periodically it snapshots the service and
// asks the Protocol thread to truncate the log.
func (r *Replica) runServiceManager() {
	defer r.wg.Done()
	th := r.profThread("Replica")
	th.Transition(profiling.StateBusy)
	defer th.Transition(profiling.StateOther)

	for {
		item, err := r.decisionQ.Take(th)
		if err != nil {
			return
		}
		if item.snapshot != nil {
			r.installSnapshot(item.snapshot)
			continue
		}
		reqs, err := wire.DecodeBatch(item.value)
		if err != nil {
			continue // corrupt batch cannot happen with our own leader; skip
		}
		for _, req := range reqs {
			r.executeOne(th, req)
		}
		r.maybeSnapshot(item.id)
	}
}

// executeOne applies one request with at-most-once semantics.
func (r *Replica) executeOne(th *profiling.Thread, req *wire.ClientRequest) {
	reply, status := r.replyCache.Lookup(th, req.ClientID, req.Seq)
	switch status {
	case replycache.StatusStale:
		return // superseded; the reply is gone
	case replycache.StatusCached:
		// Duplicate of the most recent execution (e.g. a client retry that
		// got ordered twice): do not re-execute, just resend the reply.
	case replycache.StatusNew:
		reply = r.svc.Execute(req.Payload)
		r.replyCache.Update(th, req.ClientID, req.Seq, reply)
		r.executed.Add(1)
	}
	cc := r.registry.get(req.ClientID)
	if cc == nil {
		return // client not connected here (we may be a follower)
	}
	out := &wire.ClientReply{
		ClientID: req.ClientID, Seq: req.Seq, OK: true,
		Redirect: wire.NoRedirect, Payload: reply,
	}
	if ok, _ := cc.replies.TryPut(out); ok {
		r.repliesSent.Add(1)
	}
}

// installSnapshot replaces service and reply-cache state from a transferred
// snapshot (the replica was too far behind for log catch-up).
func (r *Replica) installSnapshot(snap *wire.Snapshot) {
	_ = r.svc.Restore(snap.ServiceState)
	_ = r.replyCache.Restore(snap.ReplyCache)
	r.snapshots.put(*snap)
}

// maybeSnapshot takes a service snapshot every SnapshotEvery instances and
// asks the Protocol thread to truncate the log below it.
func (r *Replica) maybeSnapshot(executedID wire.InstanceID) {
	every := r.cfg.SnapshotEvery
	if every <= 0 || (int64(executedID)+1)%int64(every) != 0 {
		return
	}
	state, err := r.svc.Snapshot()
	if err != nil {
		return // service cannot snapshot now; try again next interval
	}
	snap := wire.Snapshot{
		LastIncluded: executedID,
		ServiceState: state,
		ReplyCache:   r.replyCache.Marshal(),
	}
	r.snapshots.put(snap)
	_, _ = r.dispatchQ.TryPut(event{kind: evTruncate, upTo: executedID + 1})
}
