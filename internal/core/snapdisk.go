package core

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"log"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"gosmr/internal/snapshot"
	"gosmr/internal/vfs"
	"gosmr/internal/wire"
)

// snapDisk owns the durable snapshot layout under DataDir/snapshots/. A
// snapshot never touches disk as one unbounded file: each cut's chunks are
// written as individual size-capped chunk files inside a generation
// directory, and a manifest ties the chain of generations together:
//
//	snapshots/
//	  manifest-<cut>.mf        committed chain: gen list + chunk checksums
//	  gen-<cut>-00/            one generation (full or delta)
//	    svc-00000.chk ...      service chunks, each ≤ SnapshotChunkBytes
//	    rc-00000.chk ...       reply-cache chunks (newest generation only)
//	  gen-<cut>-01/ ...
//	  pull-<cut>.part          state-transfer staging (resumable)
//
// The manifest rename is the commit point: chunk files are written and
// fsynced first, then the manifest (temp, fsync, rename, fsync dir)
// atomically switches boot to the new chain. A delta snapshot writes only
// its own generation directory and a fresh manifest referencing the prior
// generations in place — steady-state disk traffic scales with churn, not
// with total state size.
//
// All methods run on the ServiceManager thread or its drainer goroutine
// (never both at once: the drain handle serializes them), so snapDisk needs
// no lock.
type snapDisk struct {
	dir      string
	fs       vfs.FS
	chunkCap int
	gens     []diskGen  // chain referenced by the newest committed manifest
	rc       []chunkRef // reply-cache chunk refs (files live in the last gen's dir)
}

// diskGen is one on-disk generation.
type diskGen struct {
	dir    string // directory name relative to snapDisk.dir
	full   bool
	chunks []chunkRef
}

// chunkRef is the manifest's record of one chunk file; the manifest, not
// the file, is the authority for its size and checksum.
type chunkRef struct{ size, crc uint32 }

func newSnapDisk(dir string, chunkCap int, fsys vfs.FS) *snapDisk {
	if fsys == nil {
		fsys = vfs.OS
	}
	return &snapDisk{dir: dir, fs: fsys, chunkCap: chunkCap}
}

const (
	manifestMagic = 0x4D4E5347 // "GSNM"
	// Version 1 has no topology section; version 2 appends the encoded
	// topology of the epoch the snapshot was cut under. Epoch-0 commits
	// still write version 1 byte-for-byte, and boot accepts both.
	manifestVersion     = 1
	manifestVersionTopo = 2
)

func manifestName(cut wire.InstanceID) string {
	return fmt.Sprintf("manifest-%016x.mf", uint64(cut))
}

func genDirName(cut wire.InstanceID, pos int) string {
	return fmt.Sprintf("gen-%016x-%02d", uint64(cut), pos)
}

func pullPartName(cut wire.InstanceID) string {
	return fmt.Sprintf("pull-%016x.part", uint64(cut))
}

// appendGen commits one locally cut generation: writes its chunk files,
// then a manifest referencing the existing chain plus the new generation.
// full resets the chain to just the new generation. rcChunks is the current
// reply cache, pre-split; it replaces the previous manifest's reply-cache
// refs (the cache is always persisted whole, but never as one unbounded
// file).
func (s *snapDisk) appendGen(cut wire.InstanceID, groups int32, full bool, chunks, rcChunks [][]byte, topo []byte) error {
	chain := s.gens
	if full {
		chain = nil
	}
	gdir := genDirName(cut, len(chain))
	refs, err := s.writeGenDir(gdir, chunks, rcChunks)
	if err != nil {
		return err
	}
	next := make([]diskGen, len(chain), len(chain)+1)
	copy(next, chain)
	next = append(next, diskGen{dir: gdir, full: full, chunks: refs})
	rcRefs := chunkRefs(rcChunks)
	if err := s.writeManifest(cut, groups, next, rcRefs, topo); err != nil {
		return err
	}
	s.gens, s.rc = next, rcRefs
	s.gc(cut)
	return nil
}

// replaceChain commits a transferred snapshot chain wholesale (state
// transfer install). Every generation gets its own directory stamped with
// the install cut; the reply cache lands in the last one.
func (s *snapDisk) replaceChain(cut wire.InstanceID, groups int32, gens []snapshot.Gen, rcChunks [][]byte, topo []byte) error {
	next := make([]diskGen, 0, len(gens))
	for i, g := range gens {
		gdir := genDirName(cut, i)
		var rc [][]byte
		if i == len(gens)-1 {
			rc = rcChunks
		}
		refs, err := s.writeGenDir(gdir, g.Chunks, rc)
		if err != nil {
			return err
		}
		next = append(next, diskGen{dir: gdir, full: g.Full, chunks: refs})
	}
	rcRefs := chunkRefs(rcChunks)
	if err := s.writeManifest(cut, groups, next, rcRefs, topo); err != nil {
		return err
	}
	s.gens, s.rc = next, rcRefs
	s.gc(cut)
	return nil
}

func chunkRefs(chunks [][]byte) []chunkRef {
	refs := make([]chunkRef, len(chunks))
	for i, c := range chunks {
		refs[i] = chunkRef{size: uint32(len(c)), crc: crc32.ChecksumIEEE(c)}
	}
	return refs
}

// writeGenDir writes one generation directory: each chunk its own file,
// fsynced, then the directory itself. Chunk files need no atomic rename —
// nothing references them until a later manifest commit. The directory
// fsync is checked: a chunk whose directory entry is not durable is as good
// as unwritten, so its failure is a persist failure (degrade + retry), not
// noise to swallow.
func (s *snapDisk) writeGenDir(gdir string, chunks, rcChunks [][]byte) ([]chunkRef, error) {
	abs := filepath.Join(s.dir, gdir)
	if err := s.fs.MkdirAll(abs, 0o755); err != nil {
		return nil, err
	}
	for i, c := range chunks {
		if err := writeFileSync(s.fs, filepath.Join(abs, fmt.Sprintf("svc-%05d.chk", i)), c); err != nil {
			return nil, err
		}
		if i == 0 {
			crashPoint("persist-chunk")
		}
	}
	for i, c := range rcChunks {
		if err := writeFileSync(s.fs, filepath.Join(abs, fmt.Sprintf("rc-%05d.chk", i)), c); err != nil {
			return nil, err
		}
	}
	if err := s.fs.SyncDir(abs); err != nil {
		return nil, err
	}
	return chunkRefs(chunks), nil
}

func writeFileSync(fsys vfs.FS, path string, data []byte) error {
	f, err := fsys.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		_ = f.Close() // best-effort: the write error wins
		return err
	}
	if err := f.Sync(); err != nil {
		_ = f.Close() // best-effort: the sync error wins
		return err
	}
	return f.Close()
}

// writeManifest durably commits a chain (temp, fsync, rename, fsync dir).
func (s *snapDisk) writeManifest(cut wire.InstanceID, groups int32, gens []diskGen, rc []chunkRef, topo []byte) error {
	ver := uint32(manifestVersion)
	if len(topo) > 0 {
		ver = manifestVersionTopo
	}
	var b []byte
	b = binary.LittleEndian.AppendUint32(b, manifestMagic)
	b = binary.LittleEndian.AppendUint32(b, ver)
	b = binary.LittleEndian.AppendUint64(b, uint64(cut))
	b = binary.LittleEndian.AppendUint32(b, uint32(groups))
	b = binary.LittleEndian.AppendUint32(b, uint32(len(gens)))
	for _, g := range gens {
		if g.full {
			b = append(b, 1)
		} else {
			b = append(b, 0)
		}
		b = binary.LittleEndian.AppendUint32(b, uint32(len(g.dir)))
		b = append(b, g.dir...)
		b = binary.LittleEndian.AppendUint32(b, uint32(len(g.chunks)))
		for _, c := range g.chunks {
			b = binary.LittleEndian.AppendUint32(b, c.size)
			b = binary.LittleEndian.AppendUint32(b, c.crc)
		}
	}
	b = binary.LittleEndian.AppendUint32(b, uint32(len(rc)))
	for _, c := range rc {
		b = binary.LittleEndian.AppendUint32(b, c.size)
		b = binary.LittleEndian.AppendUint32(b, c.crc)
	}
	if ver >= manifestVersionTopo {
		b = binary.LittleEndian.AppendUint32(b, uint32(len(topo)))
		b = append(b, topo...)
	}
	b = binary.LittleEndian.AppendUint32(b, crc32.ChecksumIEEE(b))

	if err := s.fs.MkdirAll(s.dir, 0o755); err != nil {
		return err
	}
	path := filepath.Join(s.dir, manifestName(cut))
	tmp := path + ".tmp"
	if err := writeFileSync(s.fs, tmp, b); err != nil {
		return err
	}
	if err := s.fs.Rename(tmp, path); err != nil {
		return err
	}
	// Checked: until the rename's directory entry is durable the commit has
	// not happened — reporting success on a failed dir fsync would let WAL
	// checkpoints reference a snapshot a crash can un-commit.
	return s.fs.SyncDir(s.dir)
}

// decodeManifest parses and verifies a manifest image. Counts are validated
// against the remaining bytes before any allocation.
func decodeManifest(b []byte) (cut wire.InstanceID, groups int32, gens []diskGen, rc []chunkRef, topo []byte, err error) {
	fail := func(msg string) (wire.InstanceID, int32, []diskGen, []chunkRef, []byte, error) {
		return 0, 0, nil, nil, nil, fmt.Errorf("manifest %s", msg)
	}
	if len(b) < 28 {
		return fail("too short")
	}
	body, sum := b[:len(b)-4], binary.LittleEndian.Uint32(b[len(b)-4:])
	if crc32.ChecksumIEEE(body) != sum {
		return fail("checksum mismatch")
	}
	ver := binary.LittleEndian.Uint32(body[4:])
	if binary.LittleEndian.Uint32(body) != manifestMagic ||
		(ver != manifestVersion && ver != manifestVersionTopo) {
		return fail("bad header")
	}
	cut = wire.InstanceID(binary.LittleEndian.Uint64(body[8:]))
	groups = int32(binary.LittleEndian.Uint32(body[16:]))
	rest := body[20:]
	takeU32 := func() (uint32, bool) {
		if len(rest) < 4 {
			return 0, false
		}
		v := binary.LittleEndian.Uint32(rest)
		rest = rest[4:]
		return v, true
	}
	takeRefs := func() ([]chunkRef, bool) {
		n, ok := takeU32()
		if !ok || uint64(n)*8 > uint64(len(rest)) {
			return nil, false
		}
		refs := make([]chunkRef, n)
		for i := range refs {
			refs[i].size, _ = takeU32()
			refs[i].crc, _ = takeU32()
		}
		return refs, true
	}
	ngens, ok := takeU32()
	if !ok || uint64(ngens)*9 > uint64(len(rest)) {
		return fail("truncated")
	}
	gens = make([]diskGen, 0, ngens)
	for i := uint32(0); i < ngens; i++ {
		if len(rest) < 1 {
			return fail("truncated")
		}
		full := rest[0] == 1
		rest = rest[1:]
		dlen, ok := takeU32()
		if !ok || uint64(dlen) > uint64(len(rest)) {
			return fail("truncated")
		}
		dir := string(rest[:dlen])
		rest = rest[dlen:]
		if dir == "" || strings.ContainsAny(dir, "/\\") {
			return fail("bad generation dir")
		}
		refs, ok := takeRefs()
		if !ok {
			return fail("truncated")
		}
		gens = append(gens, diskGen{dir: dir, full: full, chunks: refs})
	}
	rc, ok = takeRefs()
	if !ok {
		return fail("truncated")
	}
	if ver >= manifestVersionTopo {
		tlen, ok := takeU32()
		if !ok || uint64(tlen) > uint64(len(rest)) {
			return fail("truncated")
		}
		topo = append([]byte(nil), rest[:tlen]...)
		rest = rest[tlen:]
	}
	if len(rest) != 0 {
		return fail("trailing bytes")
	}
	return cut, groups, gens, rc, topo, nil
}

// manifestFiles lists committed manifest names in ascending cut order.
func manifestFiles(fsys vfs.FS, dir string) ([]string, error) {
	entries, err := fsys.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		// Exact-suffix check first: Sscanf would prefix-match a torn
		// "manifest-....mf.tmp" left by a crash mid-persist — or a
		// quarantined "manifest-....mf.corrupt" — letting it count against
		// the two-newest retention and evict an intact fallback.
		if !strings.HasSuffix(e.Name(), ".mf") {
			continue
		}
		var u uint64
		if _, err := fmt.Sscanf(e.Name(), "manifest-%016x.mf", &u); err == nil {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	return names, nil
}

// readChunk loads one chunk file and verifies it against its manifest ref.
func (s *snapDisk) readChunk(gdir, name string, ref chunkRef) ([]byte, error) {
	path := filepath.Join(s.dir, gdir, name)
	data, err := s.fs.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if uint32(len(data)) != ref.size || crc32.ChecksumIEEE(data) != ref.crc {
		return nil, fmt.Errorf("chunk %s: size/checksum mismatch", path)
	}
	return data, nil
}

// loadNewest assembles the newest intact snapshot chain, or nil when none
// exists, plus the names of any newer manifests it had to skip. A corrupt
// manifest or chunk file (a crash mid-write, bit rot) falls back to the
// previous manifest, but never silently: each skipped manifest is
// QUARANTINED — renamed to <name>.corrupt, preserving the bytes for
// forensics while taking them out of the manifest namespace — so later
// boots neither re-scan nor re-log it, and the retention policy cannot
// count a dead manifest against the two-newest window. A skipped newest
// snapshot can still make boot fall behind the WALs' cuts, so each
// quarantine is logged with its decode error and the names are returned for
// the refusal message. On success the committed chain is adopted as the
// in-memory chain state, so the next delta append extends it.
func (s *snapDisk) loadNewest() (*wire.Snapshot, []string, error) {
	names, err := manifestFiles(s.fs, s.dir)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil, nil
		}
		return nil, nil, err
	}
	var skipped []string
	for i := len(names) - 1; i >= 0; i-- {
		snap, gens, rc, err := s.loadManifest(names[i])
		if err != nil {
			path := filepath.Join(s.dir, names[i])
			if rerr := s.fs.Rename(path, path+".corrupt"); rerr != nil {
				log.Printf("gosmr: skipping snapshot %s: %v (quarantine failed: %v)", path, err, rerr)
			} else {
				// best-effort: if the rename's dir entry is lost to a crash
				// the next boot just quarantines again.
				_ = s.fs.SyncDir(s.dir)
				log.Printf("gosmr: quarantined unreadable snapshot %s -> %s.corrupt: %v", path, names[i], err)
			}
			skipped = append(skipped, names[i])
			continue
		}
		s.gens, s.rc = gens, rc
		return snap, skipped, nil
	}
	return nil, skipped, nil
}

func (s *snapDisk) loadManifest(name string) (*wire.Snapshot, []diskGen, []chunkRef, error) {
	data, err := s.fs.ReadFile(filepath.Join(s.dir, name))
	if err != nil {
		return nil, nil, nil, err
	}
	cut, groups, gens, rcRefs, topo, err := decodeManifest(data)
	if err != nil {
		return nil, nil, nil, err
	}
	chain := make([]snapshot.Gen, len(gens))
	for i, g := range gens {
		chain[i].Full = g.full
		chain[i].Chunks = make([][]byte, len(g.chunks))
		for j, ref := range g.chunks {
			c, err := s.readChunk(g.dir, fmt.Sprintf("svc-%05d.chk", j), ref)
			if err != nil {
				return nil, nil, nil, err
			}
			chain[i].Chunks[j] = c
		}
	}
	rcChunks := make([][]byte, len(rcRefs))
	rcDir := ""
	if len(gens) > 0 {
		rcDir = gens[len(gens)-1].dir
	}
	for j, ref := range rcRefs {
		c, err := s.readChunk(rcDir, fmt.Sprintf("rc-%05d.chk", j), ref)
		if err != nil {
			return nil, nil, nil, err
		}
		rcChunks[j] = c
	}
	snap := &wire.Snapshot{
		LastIncluded: cut,
		ServiceState: snapshot.EncodeChain(chain),
		ReplyCache:   snapshot.JoinChunks(rcChunks),
		Groups:       groups,
		Topo:         topo,
	}
	return snap, gens, rcRefs, nil
}

// gc prunes everything the two newest manifests do not reference: older
// manifests, orphaned generation directories, stale temp files, and
// completed pull staging files. Keeping the second-newest manifest covers a
// crash interleaved with the WAL checkpoints that reference it (same
// retention the pre-chunked snapshot files had). Best-effort: gc errors
// never fail a commit.
func (s *snapDisk) gc(newest wire.InstanceID) {
	names, err := manifestFiles(s.fs, s.dir)
	if err != nil {
		return
	}
	for _, name := range names[:max(0, len(names)-2)] {
		// best-effort (this whole pass is): a lingering old manifest is
		// re-collected after the next commit.
		_ = s.fs.Remove(filepath.Join(s.dir, name))
	}
	// Collect directories referenced by the surviving manifests. If one of
	// them does not decode, keep all generation directories — deleting
	// blind risks the next boot's fallback.
	referenced := make(map[string]bool)
	for _, name := range names[max(0, len(names)-2):] {
		data, err := s.fs.ReadFile(filepath.Join(s.dir, name))
		if err != nil {
			return
		}
		_, _, gens, _, _, err := decodeManifest(data)
		if err != nil {
			return
		}
		for _, g := range gens {
			referenced[g.dir] = true
		}
	}
	entries, err := s.fs.ReadDir(s.dir)
	if err != nil {
		return
	}
	for _, e := range entries {
		name := e.Name()
		switch {
		case e.IsDir() && strings.HasPrefix(name, "gen-") && !referenced[name]:
			// best-effort: an orphaned generation dir costs space, not
			// correctness, and is retried next commit.
			_ = s.fs.RemoveAll(filepath.Join(s.dir, name))
		case strings.HasSuffix(name, ".tmp"):
			// best-effort: same.
			_ = s.fs.Remove(filepath.Join(s.dir, name))
		case strings.HasPrefix(name, "pull-") && strings.HasSuffix(name, ".part"):
			// A staging file for a cut at or below the committed chain is
			// finished or obsolete; one for a newer cut is an in-progress
			// pull and must survive for resume.
			var u uint64
			if _, err := fmt.Sscanf(name, "pull-%016x.part", &u); err == nil && wire.InstanceID(u) <= newest {
				// best-effort: a finished staging file only costs space.
				_ = s.fs.Remove(filepath.Join(s.dir, name))
			}
		}
	}
}
