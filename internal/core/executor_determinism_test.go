package core

import (
	"bytes"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"gosmr/internal/executor"
	"gosmr/internal/profiling"
	"gosmr/internal/service"
	"gosmr/internal/transport"
	"gosmr/internal/wire"
)

// TestExecutorClusterDeterminism drives a randomized mixed-conflict KV
// workload through a 3-replica cluster at executor worker counts 1, 2 and 8
// and requires every replica to end with byte-identical service snapshots
// and reply caches. Conflicts are real: several clients hammer shared "hot"
// keys concurrently with private keys, plus malformed (global/barrier)
// commands.
func TestExecutorClusterDeterminism(t *testing.T) {
	const (
		clients        = 8
		reqsPerClient  = 40
		sharedKeys     = 3
		privatePerConn = 4
	)
	for _, workers := range []int{1, 2, 8} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			net := transport.NewInproc(0)
			peers := []string{"det-0", "det-1", "det-2"}
			svcs := make([]*service.KV, 3)
			reps := make([]*Replica, 3)
			for i := range 3 {
				svcs[i] = service.NewKV()
				r, err := NewReplica(Config{
					ID: i, PeerAddrs: peers, ClientAddr: fmt.Sprintf("det-c%d", i),
					Network: net, Batch: batchPolicy(), ExecutorWorkers: workers,
				}, svcs[i])
				if err != nil {
					t.Fatal(err)
				}
				if err := r.Start(); err != nil {
					t.Fatal(err)
				}
				defer r.Stop()
				reps[i] = r
			}
			waitLeader(t, reps[0])

			var wg sync.WaitGroup
			for c := range clients {
				wg.Add(1)
				go func() {
					defer wg.Done()
					rng := rand.New(rand.NewSource(int64(1000*workers + c)))
					conn, err := net.Dial("det-c0")
					if err != nil {
						t.Error(err)
						return
					}
					defer conn.Close()
					for seq := 1; seq <= reqsPerClient; seq++ {
						var payload []byte
						switch p := rng.Intn(100); {
						case p < 5:
							payload = []byte{0xEE} // unknown opcode: global barrier
						case p < 40:
							key := fmt.Sprintf("hot-%d", rng.Intn(sharedKeys))
							payload = service.EncodePut(key, []byte(fmt.Sprintf("c%d-s%d", c, seq)))
						case p < 55:
							payload = service.EncodeGet(fmt.Sprintf("hot-%d", rng.Intn(sharedKeys)))
						case p < 65:
							payload = service.EncodeDel(fmt.Sprintf("hot-%d", rng.Intn(sharedKeys)))
						default:
							key := fmt.Sprintf("c%d-k%d", c, rng.Intn(privatePerConn))
							payload = service.EncodePut(key, []byte(fmt.Sprintf("v%d", seq)))
						}
						req := &wire.ClientRequest{ClientID: uint64(100 + c), Seq: uint64(seq), Payload: payload}
						if err := conn.WriteFrame(wire.Marshal(req)); err != nil {
							t.Error(err)
							return
						}
						if _, err := conn.ReadFrame(); err != nil {
							t.Error(err)
							return
						}
					}
				}()
			}
			wg.Wait()

			// Every replica (leader and followers) must execute the full log.
			total := uint64(clients * reqsPerClient)
			deadline := time.Now().Add(15 * time.Second)
			for _, r := range reps {
				for r.Executed() < total && time.Now().Before(deadline) {
					time.Sleep(2 * time.Millisecond)
				}
				if got := r.Executed(); got != total {
					t.Fatalf("replica %d executed %d of %d", r.ID(), got, total)
				}
			}

			// Byte-identical service snapshots and reply caches across the
			// cluster: parallel execution preserved the serial-equivalent
			// order everywhere.
			wantSnap, err := svcs[0].Snapshot()
			if err != nil {
				t.Fatal(err)
			}
			wantCache := reps[0].replyCache.Marshal()
			for i := 1; i < 3; i++ {
				snap, err := svcs[i].Snapshot()
				if err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(wantSnap, snap) {
					t.Errorf("replica %d service snapshot diverged from replica 0", i)
				}
				if !bytes.Equal(wantCache, reps[i].replyCache.Marshal()) {
					t.Errorf("replica %d reply cache diverged from replica 0", i)
				}
			}
		})
	}
}

// TestMultiKeyClusterDeterminism extends the cluster determinism check to
// the multi-key KV workload: TXN transfers over a shared account pool, MGET
// and MSET spanning hot keys, mixed with single-key ops and occasional
// barrier commands, at Workers{1,2,8}×Groups{1,2}. Fence scheduling must
// preserve the serial-equivalent order — byte-identical snapshots and reply
// caches on every replica — and at Workers>1 the run must actually exercise
// join nodes, not degrade to barriers.
func TestMultiKeyClusterDeterminism(t *testing.T) {
	const (
		clients       = 6
		reqsPerClient = 40
		accounts      = 5
	)
	for _, groups := range []int{1, 2} {
		for _, workers := range []int{1, 2, 8} {
			t.Run(fmt.Sprintf("groups=%d/workers=%d", groups, workers), func(t *testing.T) {
				net := transport.NewInproc(0)
				peers := []string{"mkdet-0", "mkdet-1", "mkdet-2"}
				svcs := make([]*service.KV, 3)
				reps := make([]*Replica, 3)
				for i := range 3 {
					svcs[i] = service.NewKV()
					r, err := NewReplica(Config{
						ID: i, PeerAddrs: peers, ClientAddr: fmt.Sprintf("mkdet-c%d", i),
						Network: net, Batch: batchPolicy(), Groups: groups,
						ExecutorWorkers: workers,
					}, svcs[i])
					if err != nil {
						t.Fatal(err)
					}
					if err := r.Start(); err != nil {
						t.Fatal(err)
					}
					defer r.Stop()
					reps[i] = r
				}
				waitLeader(t, reps[0])

				account := func(i int) string { return fmt.Sprintf("acct-%d", i) }
				var wg sync.WaitGroup
				for c := range clients {
					wg.Add(1)
					go func() {
						defer wg.Done()
						rng := rand.New(rand.NewSource(int64(7000*groups + 1000*workers + c)))
						conn, err := net.Dial("mkdet-c0")
						if err != nil {
							t.Error(err)
							return
						}
						defer conn.Close()
						for seq := 1; seq <= reqsPerClient; seq++ {
							var payload []byte
							switch p := rng.Intn(100); {
							case p < 3:
								payload = []byte{0xEE} // unknown opcode: global barrier
							case p < 15:
								// Seed/overwrite an account balance.
								payload = service.EncodePut(account(rng.Intn(accounts)),
									service.EncodeBalance(uint64(rng.Intn(1000))))
							case p < 50:
								// 2-key transfer between random accounts (may collide).
								src, dst := rng.Intn(accounts), rng.Intn(accounts)
								payload = service.EncodeTxn(account(src), account(dst), uint64(rng.Intn(50)))
							case p < 70:
								a, b := rng.Intn(accounts), rng.Intn(accounts)
								payload = service.EncodeMGet(account(a), account(b))
							case p < 85:
								a, b := rng.Intn(accounts), rng.Intn(accounts)
								payload = service.EncodeMSet(map[string][]byte{
									account(a): service.EncodeBalance(uint64(rng.Intn(500))),
									account(b): service.EncodeBalance(uint64(rng.Intn(500))),
								})
							default:
								payload = service.EncodeGet(account(rng.Intn(accounts)))
							}
							req := &wire.ClientRequest{ClientID: uint64(300 + c), Seq: uint64(seq), Payload: payload}
							if err := conn.WriteFrame(wire.Marshal(req)); err != nil {
								t.Error(err)
								return
							}
							if _, err := conn.ReadFrame(); err != nil {
								t.Error(err)
								return
							}
						}
					}()
				}
				wg.Wait()

				total := uint64(clients * reqsPerClient)
				deadline := time.Now().Add(15 * time.Second)
				for _, r := range reps {
					for r.Executed() < total && time.Now().Before(deadline) {
						time.Sleep(2 * time.Millisecond)
					}
					if got := r.Executed(); got != total {
						t.Fatalf("replica %d executed %d of %d", r.ID(), got, total)
					}
				}

				wantSnap, err := svcs[0].Snapshot()
				if err != nil {
					t.Fatal(err)
				}
				wantCache := reps[0].replyCache.Marshal()
				for i := 1; i < 3; i++ {
					snap, err := svcs[i].Snapshot()
					if err != nil {
						t.Fatal(err)
					}
					if !bytes.Equal(wantSnap, snap) {
						t.Errorf("replica %d service snapshot diverged from replica 0", i)
					}
					if !bytes.Equal(wantCache, reps[i].replyCache.Marshal()) {
						t.Errorf("replica %d reply cache diverged from replica 0", i)
					}
				}

				// With several workers the multi-key ops must have been fence-
				// scheduled (joins recorded), not run as global barriers; with
				// one worker every multi-key op lands on that worker directly.
				// KeyHash is deterministic, so whether the account pool spans
				// more than one worker is a static property of the config.
				span := map[uint64]bool{}
				for i := range accounts {
					span[executor.KeyHash(account(i))%uint64(workers)] = true
				}
				es := reps[0].ExecStats()
				if workers > 1 && len(span) > 1 && es.Joins == 0 {
					t.Errorf("workers=%d ran no join nodes (stats %+v) — multi-key commands not exercised", workers, es)
				}
				if es.Fences < es.Joins {
					t.Errorf("fences %d < joins %d — each join needs at least one fence", es.Fences, es.Joins)
				}
			})
		}
	}
}

// waitLeader blocks until r establishes leadership.
func waitLeader(t *testing.T, r *Replica) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !r.IsLeader() && time.Now().Before(deadline) {
		time.Sleep(2 * time.Millisecond)
	}
	if !r.IsLeader() {
		t.Fatal("replica never became leader")
	}
}

// TestExecutorObservability verifies the executor stage shows up in the
// replica's Table-I statistics and thread profile: per-worker queues in
// QueueStats and Executor-i worker threads in the profiling registry.
func TestExecutorObservability(t *testing.T) {
	net := transport.NewInproc(0)
	reg := profiling.NewRegistry()
	r, err := NewReplica(Config{
		ID: 0, PeerAddrs: []string{"obs-peer"}, ClientAddr: "obs-client",
		Network: net, Batch: batchPolicy(), ExecutorWorkers: 3, Profiling: reg,
	}, service.NewKV())
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Start(); err != nil {
		t.Fatal(err)
	}
	defer r.Stop()
	waitLeader(t, r)

	conn, err := net.Dial("obs-client")
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	for seq := 1; seq <= 10; seq++ {
		req := &wire.ClientRequest{ClientID: 77, Seq: uint64(seq),
			Payload: service.EncodePut(fmt.Sprintf("k%d", seq), []byte("v"))}
		if err := conn.WriteFrame(wire.Marshal(req)); err != nil {
			t.Fatal(err)
		}
		if _, err := conn.ReadFrame(); err != nil {
			t.Fatal(err)
		}
	}

	stats := r.QueueStats()
	for _, name := range []string{"ExecutorQueue-0", "ExecutorQueue-1", "ExecutorQueue-2"} {
		if _, ok := stats[name]; !ok {
			t.Errorf("QueueStats missing %s (have %v)", name, stats)
		}
	}
	names := make(map[string]bool)
	for _, st := range reg.Snapshot() {
		names[st.Name] = true
	}
	for _, want := range []string{"Executor-0", "Executor-1", "Executor-2"} {
		if !names[want] {
			t.Errorf("thread %q not registered", want)
		}
	}
	r.ResetQueueStats()

	// A plain (non-ConflictAware) service must stay sequential even with
	// workers configured: no executor queues appear.
	r2, err := NewReplica(Config{
		ID: 0, PeerAddrs: []string{"obs2-peer"}, ClientAddr: "obs2-client",
		Network: net, Batch: batchPolicy(), ExecutorWorkers: 8,
	}, &service.Null{})
	if err != nil {
		t.Fatal(err)
	}
	for name := range r2.QueueStats() {
		if name == "ExecutorQueue-0" {
			t.Error("plain Service got a parallel executor")
		}
	}
}
