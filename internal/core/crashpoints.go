package core

import "os"

// crashExitCode is the exit status crashPoint dies with, distinguishable
// from both a clean shutdown and a startup failure in test assertions.
const crashExitCode = 137

// crashPoint kills the process abruptly when the named crash point is armed
// via the GOSMR_CRASHPOINT environment variable — fault injection for the
// subprocess kill-restart suites, which use it to die deterministically
// inside windows (e.g. mid snapshot install) that a timed SIGKILL cannot hit
// reliably. os.Exit skips every deferred function and graceful Stop path, so
// nothing — not the WAL's pending buffer, not a transport flush — survives
// beyond what is already on disk, the same post-mortem state a kill -9
// leaves. A no-op (one getenv) in normal operation.
func crashPoint(name string) {
	if name != "" && os.Getenv("GOSMR_CRASHPOINT") == name {
		os.Exit(crashExitCode)
	}
}
