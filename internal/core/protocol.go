package core

import (
	"time"

	"gosmr/internal/paxos"
	"gosmr/internal/profiling"
	"gosmr/internal/retrans"
)

// runProtocol is the Protocol thread (Sec. V-C2): a single event loop with
// exclusive write access to the replicated log and all protocol state. It
// consumes the DispatcherQueue (peer messages, suspicions, proposal hints,
// housekeeping), drives the paxos.Node pure state machine, and applies its
// effects: enqueue sends (never blocking on sockets), register/cancel
// retransmissions, push decisions to the ServiceManager, and maintain the
// lock-free view/leader/watermark hints that other modules read.
func (r *Replica) runProtocol(node *paxos.Node) {
	defer r.wg.Done()
	th := r.profThread("Protocol")
	th.Transition(profiling.StateBusy)
	defer th.Transition(profiling.StateOther)

	handles := make(map[paxos.RetransKey]*retrans.Handle)

	apply := func(e paxos.Effects) { r.applyEffects(th, node, handles, e) }

	apply(node.Start())
	r.refreshHints(node)

	for {
		ev, err := r.dispatchQ.Take(th)
		if err != nil {
			return
		}
		switch ev.kind {
		case evPeerMsg:
			apply(node.HandleMessage(ev.from, ev.msg))
		case evSuspect:
			apply(node.OnSuspect(ev.view))
		case evProposalReady:
			// Handled by the drain below.
		case evCatchUpTimer:
			apply(node.CatchUpTimeout())
		case evTruncate:
			node.TruncateLog(ev.upTo)
		}
		// Start new ballots whenever leadership and the window allow: a
		// decision that just freed a slot, or a fresh batch, both land here.
		for node.WindowOpen() {
			value, ok := r.proposalQ.TryTake()
			if !ok {
				break
			}
			e, accepted := node.ProposeBatch(value)
			if !accepted {
				break
			}
			apply(e)
		}
		r.decidedUpTo.Store(int64(node.DecidedUpTo()))
	}
}

// applyEffects executes one Effects value from the protocol state machine.
func (r *Replica) applyEffects(th *profiling.Thread, node *paxos.Node,
	handles map[paxos.RetransKey]*retrans.Handle, e paxos.Effects) {

	// Cancels first: the lock-free flag flip of Sec. V-C4.
	for _, k := range e.CancelRetrans {
		if h, ok := handles[k]; ok {
			h.Cancel()
			delete(handles, k)
		}
	}

	for _, s := range e.Sends {
		to, msg := s.To, s.Msg
		send := func() {
			if to == paxos.Broadcast {
				r.broadcast(msg)
			} else {
				r.enqueueSend(to, msg)
			}
		}
		send()
		if s.Retrans != nil {
			if old, ok := handles[*s.Retrans]; ok {
				old.Cancel()
			}
			handles[*s.Retrans] = r.retr.Add(send)
		}
	}

	if e.ViewChanged {
		r.refreshHints(node)
		r.detector.UpdateView(node.View())
	}

	// Snapshot install must precede the decisions that follow it.
	if e.InstallSnapshot != nil {
		if err := r.decisionQ.Put(th, decisionItem{snapshot: e.InstallSnapshot}); err != nil {
			return
		}
	}
	for _, d := range e.Decisions {
		if err := r.decisionQ.Put(th, decisionItem{id: d.ID, value: d.Value}); err != nil {
			return
		}
	}

	if e.CatchUp != nil {
		leader := node.Leader()
		if leader != r.cfg.ID {
			r.enqueueSend(leader, e.CatchUp)
		}
		// Re-arm: if the response never comes, the state machine re-issues.
		timeout := r.cfg.CatchUpTimeout
		time.AfterFunc(timeout, func() {
			_, _ = r.dispatchQ.TryPut(event{kind: evCatchUpTimer})
		})
	}
}

// refreshHints publishes the view/leader/leadership hints read lock-free by
// ClientIO (redirects) and the failure detector (heartbeats).
func (r *Replica) refreshHints(node *paxos.Node) {
	r.viewHint.Store(int32(node.View()))
	r.leaderHint.Store(int32(node.Leader()))
	r.isLeader.Store(node.IsLeader())
}
