package core

import (
	"time"

	"gosmr/internal/paxos"
	"gosmr/internal/profiling"
	"gosmr/internal/retrans"
	"gosmr/internal/wal"
	"gosmr/internal/wire"
)

// protoState is the Protocol thread's private bookkeeping: retransmission
// handles and — when the group's WAL runs under group commit — the durable
// gate holding effects whose WAL records have not been fsynced yet.
type protoState struct {
	handles map[paxos.RetransKey]*retrans.Handle
	// gate is a FIFO of effect batches parked until the WAL's durable
	// watermark reaches their lsn. Owned exclusively by the Protocol
	// thread; the WAL Syncer only nudges the thread with evDurable.
	gate []gatedEffects
	// topoEpoch is the topology epoch this group has installed (journaled
	// and handed to its node); the thread polls Replica.pendingTopo against
	// it at the top of every loop iteration.
	topoEpoch int64
}

// gatedSend is one peer-bound message awaiting durability.
type gatedSend struct {
	to  int // peer ID or paxos.Broadcast
	msg wire.Message
	key *paxos.RetransKey
}

// gatedEffects is the output of one protocol event, parked until the WAL is
// durable up to lsn.
type gatedEffects struct {
	lsn   int64
	sends []gatedSend
	items []decisionItem // snapshot installs and decisions, in order
}

// runProtocol is one ordering group's Protocol thread (Sec. V-C2): a single
// event loop with exclusive write access to the group's replicated log and
// all its protocol state. It consumes the group's DispatcherQueue (peer
// messages, suspicions, proposal hints, housekeeping), drives the group's
// paxos.Node pure state machine, and applies its effects: enqueue sends
// (never blocking on sockets), register/cancel retransmissions, push the
// group's decisions toward the merge stage, and maintain the lock-free
// view/leader/watermark hints that other modules read.
//
// With a WAL under group commit, every effect whose event journaled new
// records is parked in the durable gate and released once the Syncer's
// fsync covers it. This is what makes a kill -9 safe: no promise, accepted
// value, or decision leaves this replica — as a message or as an executed
// request — before it is on disk. The Protocol thread itself never waits
// for the disk; it parks the output and moves to the next event.
func (r *Replica) runProtocol(g *ordGroup, node *paxos.Node) {
	defer r.wg.Done()
	th := r.profThread(gname("Protocol", g.idx))
	th.Transition(profiling.StateBusy)
	defer th.Transition(profiling.StateOther)

	ps := &protoState{
		handles:   make(map[paxos.RetransKey]*retrans.Handle),
		topoEpoch: r.topo.Load().Epoch,
	}

	apply := func(e paxos.Effects) { r.applyEffects(th, g, node, ps, e) }

	apply(node.Start())
	r.refreshHints(g, node)

	for {
		ev, err := g.dispatchQ.Take(th)
		if err != nil {
			return
		}
		// Install a newly adopted topology before processing the event: the
		// stop-the-group handoff. Journal it (so a checkpointed WAL still
		// remembers the epoch), hand it to the node, and advance to the
		// epoch's base view — the Phase 1 re-run over the unstable suffix
		// under the new shape is what carries the old epoch's in-flight
		// proposals across.
		if t := r.pendingTopo.Load(); t != nil && t.Epoch > ps.topoEpoch {
			ps.topoEpoch = t.Epoch
			if g.wal != nil {
				g.wal.Append(wal.Record{Type: wal.RecTopo, Value: wire.EncodeTopology(t)})
			}
			crashPoint("reconfig-journal")
			node.SetTopology(t)
			apply(node.AdvanceTo(t.BaseView))
			r.refreshHints(g, node)
		}
		switch ev.kind {
		case evPeerMsg:
			// Honor the local lease promise in EVERY group: a Prepare from
			// anyone but the promised leader is deferred until the promise
			// expires (a sibling-group election completing early could
			// commit writes the leaseholder's local reads would miss). The
			// event is re-injected whole; a drop on a full queue is safe —
			// the candidate retransmits its Prepare.
			if _, isPrep := ev.msg.(*wire.Prepare); isPrep {
				if d := r.leases.holdPrepare(ev.from, time.Now()); d > 0 {
					rev := ev
					time.AfterFunc(d, func() { _, _ = g.dispatchQ.TryPut(rev) })
					continue
				}
			}
			apply(node.HandleMessage(ev.from, ev.msg))
			// The reader Retained the message before dispatch, so the state
			// machine kept only owned memory (log values, snapshot bytes);
			// the struct itself is dead now and goes back to its pool.
			wire.Release(ev.msg)
		case evSuspect:
			// The shared failure detector suspects the leader of group 0's
			// view ev.view. Each group maps the suspicion onto its own view:
			// group 0 requires an exact view match (the original semantics);
			// sibling groups act iff their current leader is the suspected
			// replica, so a group whose view drifted still rotates away from
			// a dead leader.
			if g.idx == 0 {
				apply(node.OnSuspect(ev.view))
			} else if r.topo.Load().Leader(ev.view) == node.Leader() {
				apply(node.OnSuspect(node.View()))
			}
		case evProposalReady:
			// Handled by the drain below.
		case evCatchUpTimer:
			apply(node.CatchUpTimeout(ev.gen))
		case evTruncate:
			node.TruncateLog(ev.upTo)
			if g.wal != nil {
				// The snapshot covering the truncated prefix is durable
				// (the ServiceManager persists it before asking for the
				// cut), so compact the WAL: one checkpoint segment holding
				// the retained live state replaces everything older. The
				// current view leads the dump — the promise lived in
				// RecView records of the discarded segments, and an
				// acceptor that forgot its promise across a restart could
				// double-promise an older ballot. The one deliberate disk
				// access on this thread; snapshots are rare.
				states := []wal.Record{{Type: wal.RecView, View: node.View()}}
				if t := node.Topology(); t != nil {
					// The RecTopo records of the discarded segments carried
					// the epoch; re-dump it so a restart from this checkpoint
					// still boots in the right topology.
					states = append(states, wal.Record{Type: wal.RecTopo, Value: wire.EncodeTopology(t)})
				}
				states = append(states, suffixStates(node.Log())...)
				if err := g.wal.Checkpoint(node.Log().Base(), states); err != nil {
					// Degrade: the old segments stay, replay still works, and
					// the next snapshot cut retries the compaction. ENOSPC
					// additionally sheds catch-up retention — the likeliest
					// reason the checkpoint dump had no room.
					r.snapshotFailure("wal checkpoint", node.Log().Base(), err)
					r.maybeShrinkWAL(err)
				}
			}
		case evFastForward:
			// A transferred snapshot covering this group's log below ev.upTo
			// is durably on disk (the ServiceManager persisted it before
			// sending this event), so the cut this journals can never outrun
			// its snapshot. Decisions already applied above the cut are
			// emitted by FastForward itself.
			apply(node.FastForward(ev.upTo))
			if ev.snap != nil {
				// Install ack: echo the installed marker into this group's
				// decision stream, behind the cut and any decisions this
				// event released, so the Merger jumps its position in order.
				if !r.emitItem(th, g, ps, decisionItem{snapshot: ev.snap, installed: true}) {
					return
				}
			}
		case evDurable:
			// The WAL Syncer advanced the durable watermark; the release
			// check below the switch does the work.
		}
		// Sibling groups keep their view epoch converged on group 0's (the
		// view the shared failure detector tracks). Suspicion fan-out is
		// best-effort (TryPut), so a group can miss one; this check makes
		// recovery self-healing: any event — a peer message, an alignment
		// nudge, a redirect wake-up from ClientIO — re-synchronizes the
		// view, and if this replica leads the new view it starts Phase 1
		// for this group too.
		if g.idx != 0 {
			if v0 := wire.View(r.groups[0].viewHint.Load()); v0 > node.View() {
				apply(node.AdvanceTo(v0))
			}
		}
		// Start new ballots whenever leadership and the window allow: a
		// decision that just freed a slot, or a fresh batch, both land here.
		// The merge-backlog gate bounds how far this group's decided slots
		// may run ahead of what the merge stage has consumed: while a
		// sibling group stalls (lossy link, dead sub-leader), the Merger
		// must buffer this group's decisions, so without the gate a busy
		// group would grow that buffer without bound. Closing the gate
		// throttles only new proposals — the ProposalQueue fills, the
		// Batcher stalls, backpressure reaches the clients (Sec. V-E) —
		// while event processing continues, so the stalled sibling still
		// recovers and reopens the gate.
		backlogCap := int64(4*r.cfg.Window + 256)
		for node.WindowOpen() &&
			int64(node.DecidedUpTo())-g.mergedUpTo.Load() < backlogCap {
			value, ok := g.proposalQ.TryTake()
			if !ok {
				break
			}
			e, accepted := node.ProposeBatch(value)
			if !accepted {
				break
			}
			apply(e)
		}
		r.alignGroup(g, node, apply)
		if !r.releaseDurable(th, g, ps) {
			return
		}
		g.decidedUpTo.Store(int64(node.DecidedUpTo()))
	}
}

// applyEffects executes one Effects value from a group's protocol state
// machine. Peer-bound messages are tagged with the group (group 0 stays
// unwrapped), and decisions flow into the MergeQueue for the merge stage.
// Under group commit the sends and decisions are parked in the durable gate
// instead, until the WAL covers the records this event journaled.
func (r *Replica) applyEffects(th *profiling.Thread, g *ordGroup, node *paxos.Node,
	ps *protoState, e paxos.Effects) {

	if g.wal != nil && g.wal.Failed() != nil {
		// Fail-stop: the WAL hit a write/fsync fault, so records this event
		// journaled may not be on disk. Emit nothing — under SyncBatch the
		// durable gate would hold the output anyway (the watermark is frozen),
		// but SyncAlways has no gate, and a reply acknowledging an
		// un-journaled accept is exactly the loss fail-stop exists to prevent.
		// The OnFault callback is already tearing the replica down.
		return
	}

	// Cancels first: the lock-free flag flip of Sec. V-C4. A cancelled
	// message still parked in the durable gate must not be sent at release
	// (nothing would ever cancel its retransmission), so the gate is
	// scrubbed too.
	for _, k := range e.CancelRetrans {
		if h, ok := ps.handles[k]; ok {
			h.Cancel()
			delete(ps.handles, k)
		}
		for gi := range ps.gate {
			sends := ps.gate[gi].sends[:0]
			for _, s := range ps.gate[gi].sends {
				if s.key == nil || *s.key != k {
					sends = append(sends, s)
				}
			}
			ps.gate[gi].sends = sends
		}
	}

	if e.ViewChanged {
		// Journal the promise before any output of this event computes its
		// gate position: the new view must be durable before a PrepareOK or
		// Accept sent under it reaches a peer.
		if g.wal != nil {
			g.wal.Append(wal.Record{Type: wal.RecView, View: node.View()})
		}
		r.refreshHints(g, node)
		if g.idx == 0 {
			r.detector.UpdateView(node.View())
		}
	}

	if g.gated {
		sends := make([]gatedSend, 0, len(e.Sends))
		for _, s := range e.Sends {
			sends = append(sends, gatedSend{to: s.To, msg: wrapGroup(g.idx, s.Msg), key: s.Retrans})
		}
		var items []decisionItem
		// Snapshot install must precede the decisions that follow it.
		if e.InstallSnapshot != nil {
			items = append(items, decisionItem{meta: e.InstallSnapshot})
		}
		for _, d := range e.Decisions {
			items = append(items, decisionItem{id: d.ID, value: d.Value})
		}
		lsn := g.wal.AppendedLSN()
		if len(ps.gate) > 0 || g.wal.DurableLSN() < lsn {
			// Park. FIFO order through the gate preserves the per-group
			// decision order the merge stage depends on.
			ps.gate = append(ps.gate, gatedEffects{lsn: lsn, sends: sends, items: items})
		} else if !r.emitEffects(th, g, ps, sends, items) {
			return
		}
	} else {
		// Direct path (no gating — the default in-memory replica and the
		// always/none policies): no intermediate slices on the hot path.
		for _, s := range e.Sends {
			r.sendOne(g, ps, s.To, wrapGroup(g.idx, s.Msg), s.Retrans)
		}
		if e.InstallSnapshot != nil {
			if err := r.mergeQ.Put(th, groupDecision{group: g.idx,
				item: decisionItem{meta: e.InstallSnapshot}}); err != nil {
				return
			}
		}
		for _, d := range e.Decisions {
			if err := r.mergeQ.Put(th, groupDecision{group: g.idx,
				item: decisionItem{id: d.ID, value: d.Value}}); err != nil {
				return
			}
		}
	}

	if e.Lease != nil {
		// A heartbeat-carried lease grant from the current leader. Promise
		// bookkeeping only — no acceptor state — so the ack goes out
		// ungated (LeaseAck is group-agnostic and stays unwrapped).
		if ack := r.leases.onGrant(e.Lease.From, e.Lease.View, e.Lease.DurationMS, e.Lease.Seq); ack != nil {
			r.enqueueSend(e.Lease.From, ack)
		}
	}

	if e.CatchUp != nil {
		// Catch-up queries carry no acceptor state; they go out ungated.
		leader := node.Leader()
		if leader != r.cfg.ID {
			r.enqueueSend(leader, wrapGroup(g.idx, e.CatchUp))
		}
		// Re-arm: if the response never comes, the state machine re-issues.
		// The timer carries the query's generation so a timeout that lost
		// the race with the response is a no-op instead of a duplicate query.
		gen := e.CatchUpGen
		timeout := r.cfg.CatchUpTimeout
		time.AfterFunc(timeout, func() {
			_, _ = g.dispatchQ.TryPut(event{kind: evCatchUpTimer, gen: gen})
		})
	}
}

// emitItem pushes one decision-stream item toward the merge stage, through
// the durable gate when the group is gated (FIFO with everything already
// parked, so stream order is preserved). Returns false on shutdown.
func (r *Replica) emitItem(th *profiling.Thread, g *ordGroup, ps *protoState, item decisionItem) bool {
	if g.gated {
		lsn := g.wal.AppendedLSN()
		if len(ps.gate) > 0 || g.wal.DurableLSN() < lsn {
			ps.gate = append(ps.gate, gatedEffects{lsn: lsn, items: []decisionItem{item}})
			return true
		}
	}
	return r.emitEffects(th, g, ps, nil, []decisionItem{item})
}

// sendOne transmits a (group-wrapped) message and registers its
// retransmission when key is non-nil.
func (r *Replica) sendOne(g *ordGroup, ps *protoState, to int, msg wire.Message, key *paxos.RetransKey) {
	send := func() {
		if to == paxos.Broadcast {
			r.broadcast(msg)
		} else {
			r.enqueueSend(to, msg)
		}
	}
	send()
	if key != nil {
		if old, ok := ps.handles[*key]; ok {
			old.Cancel()
		}
		ps.handles[*key] = g.retr.Add(send)
	}
}

// emitEffects transmits sends (registering retransmissions) and pushes
// items to the merge stage. Returns false when the replica is shutting down
// (MergeQueue closed).
func (r *Replica) emitEffects(th *profiling.Thread, g *ordGroup, ps *protoState,
	sends []gatedSend, items []decisionItem) bool {

	for _, s := range sends {
		r.sendOne(g, ps, s.to, s.msg, s.key)
	}
	for _, it := range items {
		if err := r.mergeQ.Put(th, groupDecision{group: g.idx, item: it}); err != nil {
			return false
		}
	}
	return true
}

// releaseDurable emits every gated effect batch the WAL's durable watermark
// has reached, in park order. Returns false on shutdown.
func (r *Replica) releaseDurable(th *profiling.Thread, g *ordGroup, ps *protoState) bool {
	if len(ps.gate) == 0 {
		return true
	}
	durable := g.wal.DurableLSN()
	n := 0
	for _, ge := range ps.gate {
		if ge.lsn > durable {
			break
		}
		n++
	}
	if n == 0 {
		return true
	}
	released := ps.gate[:n]
	ps.gate = append([]gatedEffects(nil), ps.gate[n:]...)
	for _, ge := range released {
		if !r.emitEffects(th, g, ps, ge.sends, ge.items) {
			return false
		}
	}
	return true
}

// refreshHints publishes the group's view/leader/leadership hints read
// lock-free by ClientIO (redirects) and — for group 0 — the failure detector
// (heartbeats).
func (r *Replica) refreshHints(g *ordGroup, node *paxos.Node) {
	g.viewHint.Store(int32(node.View()))
	g.leaderHint.Store(int32(node.Leader()))
	g.isLeader.Store(node.IsLeader())
	g.readBarrier.Store(int64(node.ReadBarrier()))
	// Ordering note (lease safety): applyEffects calls this BEFORE emitting
	// any send of the same event, so when this replica abandons leadership
	// by adopting a higher view, its lease reads go invalid before the
	// PrepareOK helping the new leader can leave the building.
}
