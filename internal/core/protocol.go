package core

import (
	"time"

	"gosmr/internal/paxos"
	"gosmr/internal/profiling"
	"gosmr/internal/retrans"
	"gosmr/internal/wire"
)

// runProtocol is one ordering group's Protocol thread (Sec. V-C2): a single
// event loop with exclusive write access to the group's replicated log and
// all its protocol state. It consumes the group's DispatcherQueue (peer
// messages, suspicions, proposal hints, housekeeping), drives the group's
// paxos.Node pure state machine, and applies its effects: enqueue sends
// (never blocking on sockets), register/cancel retransmissions, push the
// group's decisions toward the merge stage, and maintain the lock-free
// view/leader/watermark hints that other modules read.
func (r *Replica) runProtocol(g *ordGroup, node *paxos.Node) {
	defer r.wg.Done()
	th := r.profThread(gname("Protocol", g.idx))
	th.Transition(profiling.StateBusy)
	defer th.Transition(profiling.StateOther)

	handles := make(map[paxos.RetransKey]*retrans.Handle)

	apply := func(e paxos.Effects) { r.applyEffects(th, g, node, handles, e) }

	apply(node.Start())
	r.refreshHints(g, node)

	for {
		ev, err := g.dispatchQ.Take(th)
		if err != nil {
			return
		}
		switch ev.kind {
		case evPeerMsg:
			apply(node.HandleMessage(ev.from, ev.msg))
		case evSuspect:
			// The shared failure detector suspects the leader of group 0's
			// view ev.view. Each group maps the suspicion onto its own view:
			// group 0 requires an exact view match (the original semantics);
			// sibling groups act iff their current leader is the suspected
			// replica, so a group whose view drifted still rotates away from
			// a dead leader.
			if g.idx == 0 {
				apply(node.OnSuspect(ev.view))
			} else if paxos.LeaderOf(ev.view, r.n) == node.Leader() {
				apply(node.OnSuspect(node.View()))
			}
		case evProposalReady:
			// Handled by the drain below.
		case evCatchUpTimer:
			apply(node.CatchUpTimeout())
		case evTruncate:
			node.TruncateLog(ev.upTo)
		case evFastForward:
			// A snapshot installed via a sibling group's catch-up covers
			// this group's log below ev.upTo.
			apply(node.FastForward(ev.upTo))
		}
		// Sibling groups keep their view epoch converged on group 0's (the
		// view the shared failure detector tracks). Suspicion fan-out is
		// best-effort (TryPut), so a group can miss one; this check makes
		// recovery self-healing: any event — a peer message, an alignment
		// nudge, a redirect wake-up from ClientIO — re-synchronizes the
		// view, and if this replica leads the new view it starts Phase 1
		// for this group too.
		if g.idx != 0 {
			if v0 := wire.View(r.groups[0].viewHint.Load()); v0 > node.View() {
				apply(node.AdvanceTo(v0))
			}
		}
		// Start new ballots whenever leadership and the window allow: a
		// decision that just freed a slot, or a fresh batch, both land here.
		// The merge-backlog gate bounds how far this group's decided slots
		// may run ahead of what the merge stage has consumed: while a
		// sibling group stalls (lossy link, dead sub-leader), the Merger
		// must buffer this group's decisions, so without the gate a busy
		// group would grow that buffer without bound. Closing the gate
		// throttles only new proposals — the ProposalQueue fills, the
		// Batcher stalls, backpressure reaches the clients (Sec. V-E) —
		// while event processing continues, so the stalled sibling still
		// recovers and reopens the gate.
		backlogCap := int64(4*r.cfg.Window + 256)
		for node.WindowOpen() &&
			int64(node.DecidedUpTo())-g.mergedUpTo.Load() < backlogCap {
			value, ok := g.proposalQ.TryTake()
			if !ok {
				break
			}
			e, accepted := node.ProposeBatch(value)
			if !accepted {
				break
			}
			apply(e)
		}
		r.alignGroup(g, node, apply)
		g.decidedUpTo.Store(int64(node.DecidedUpTo()))
	}
}

// applyEffects executes one Effects value from a group's protocol state
// machine. Peer-bound messages are tagged with the group (group 0 stays
// unwrapped), and decisions flow into the MergeQueue for the merge stage.
func (r *Replica) applyEffects(th *profiling.Thread, g *ordGroup, node *paxos.Node,
	handles map[paxos.RetransKey]*retrans.Handle, e paxos.Effects) {

	// Cancels first: the lock-free flag flip of Sec. V-C4.
	for _, k := range e.CancelRetrans {
		if h, ok := handles[k]; ok {
			h.Cancel()
			delete(handles, k)
		}
	}

	for _, s := range e.Sends {
		to, msg := s.To, wrapGroup(g.idx, s.Msg)
		send := func() {
			if to == paxos.Broadcast {
				r.broadcast(msg)
			} else {
				r.enqueueSend(to, msg)
			}
		}
		send()
		if s.Retrans != nil {
			if old, ok := handles[*s.Retrans]; ok {
				old.Cancel()
			}
			handles[*s.Retrans] = g.retr.Add(send)
		}
	}

	if e.ViewChanged {
		r.refreshHints(g, node)
		if g.idx == 0 {
			r.detector.UpdateView(node.View())
		}
	}

	// Snapshot install must precede the decisions that follow it.
	if e.InstallSnapshot != nil {
		if err := r.mergeQ.Put(th, groupDecision{group: g.idx,
			item: decisionItem{snapshot: e.InstallSnapshot}}); err != nil {
			return
		}
	}
	for _, d := range e.Decisions {
		if err := r.mergeQ.Put(th, groupDecision{group: g.idx,
			item: decisionItem{id: d.ID, value: d.Value}}); err != nil {
			return
		}
	}

	if e.CatchUp != nil {
		leader := node.Leader()
		if leader != r.cfg.ID {
			r.enqueueSend(leader, wrapGroup(g.idx, e.CatchUp))
		}
		// Re-arm: if the response never comes, the state machine re-issues.
		timeout := r.cfg.CatchUpTimeout
		time.AfterFunc(timeout, func() {
			_, _ = g.dispatchQ.TryPut(event{kind: evCatchUpTimer})
		})
	}
}

// refreshHints publishes the group's view/leader/leadership hints read
// lock-free by ClientIO (redirects) and — for group 0 — the failure detector
// (heartbeats).
func (r *Replica) refreshHints(g *ordGroup, node *paxos.Node) {
	g.viewHint.Store(int32(node.View()))
	g.leaderHint.Store(int32(node.Leader()))
	g.isLeader.Store(node.IsLeader())
}
