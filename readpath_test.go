package gosmr_test

// Read-path tests: leader leases, follower reads, and the lease-safety
// property that matters — a leaseholder cut off from the majority must stop
// serving local reads before a new leader can commit writes it would miss.

import (
	"bytes"
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"gosmr"
	"gosmr/internal/service"
	"gosmr/internal/transport"
)

// waitLeaseValid waits until replica r holds a valid lease.
func waitLeaseValid(t *testing.T, r *gosmr.Replica, timeout time.Duration) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if r.LeaseValid() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("replica %d did not establish a valid lease within %v", r.ID(), timeout)
}

// TestLeaderLeaseLocalReads pins the leaseholder fast path: once the lease
// quorum forms, reads through the leader are served locally (LocalReads
// advances) and observe every completed write.
func TestLeaderLeaseLocalReads(t *testing.T) {
	c := startCluster(t, 3, clusterConfig{})
	cli := c.client()
	defer cli.Close()

	if _, err := cli.Execute(service.EncodePut("lease-k", []byte("v0"))); err != nil {
		t.Fatal(err)
	}
	leader := c.replicas[0]
	waitLeaseValid(t, leader, 5*time.Second)

	before := leader.LocalReads()
	for i := range 20 {
		val := []byte(fmt.Sprintf("v%d", i))
		if _, err := cli.Execute(service.EncodePut("lease-k", val)); err != nil {
			t.Fatalf("PUT %d: %v", i, err)
		}
		reply, err := cli.Read(service.EncodeGet("lease-k"), gosmr.ReadLinearizable)
		if err != nil {
			t.Fatalf("READ %d: %v", i, err)
		}
		st, got := service.DecodeReply(reply)
		if st != service.KVOK || !bytes.Equal(got, val) {
			t.Fatalf("READ %d: status %d value %q, want %q (read must observe the completed write)", i, st, got, val)
		}
	}
	if leader.LocalReads() == before {
		t.Error("no read was served on the leaseholder's local path")
	}
}

// TestFollowerReadLinearizable pins follower reads: a client pinned to a
// follower issues linearizable reads that are served by THAT replica via the
// read-index path (its LocalReads advances), and every read observes the
// write completed before it.
func TestFollowerReadLinearizable(t *testing.T) {
	c := startCluster(t, 3, clusterConfig{})
	writer := c.client()
	defer writer.Close()

	if _, err := writer.Execute(service.EncodePut("fr-k", []byte("v0"))); err != nil {
		t.Fatal(err)
	}
	leader := c.replicas[0]
	waitLeaseValid(t, leader, 5*time.Second)

	follower := c.replicas[1]
	reader, err := gosmr.Dial(gosmr.ClientConfig{
		Addrs:          c.addrs,
		Network:        c.net,
		Timeout:        15 * time.Second,
		AttemptTimeout: 300 * time.Millisecond,
		InitialTarget:  follower.ID(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer reader.Close()

	for i := range 20 {
		val := []byte(fmt.Sprintf("v%d", i))
		if _, err := writer.Execute(service.EncodePut("fr-k", val)); err != nil {
			t.Fatalf("PUT %d: %v", i, err)
		}
		reply, err := reader.Read(service.EncodeGet("fr-k"), gosmr.ReadLinearizable)
		if err != nil {
			t.Fatalf("READ %d: %v", i, err)
		}
		st, got := service.DecodeReply(reply)
		if st != service.KVOK || !bytes.Equal(got, val) {
			t.Fatalf("READ %d: status %d value %q, want %q (follower read must observe the completed write)", i, st, got, val)
		}
	}
	// The reads must have been served by the follower itself. (Early reads
	// may have fallen back to the ordered path while the lease formed; with
	// the lease established, 20 reads are plenty to exercise the local path.)
	if follower.LocalReads() == 0 {
		t.Error("follower served no reads on the read-index path; every read fell back to ordered execution")
	}
}

// TestReadStable pins the weak level: a stable read is served from whatever
// state the contacted replica has applied, with no coordination — it must
// succeed and return a value the replica once held (here: the only value
// ever written).
func TestReadStable(t *testing.T) {
	c := startCluster(t, 3, clusterConfig{})
	cli := c.client()
	defer cli.Close()
	if _, err := cli.Execute(service.EncodePut("st-k", []byte("sv"))); err != nil {
		t.Fatal(err)
	}
	c.waitConverged(1, 10*time.Second)
	deadline := time.Now().Add(5 * time.Second)
	for {
		reply, err := cli.Read(service.EncodeGet("st-k"), gosmr.ReadStable)
		if err != nil {
			t.Fatalf("stable READ: %v", err)
		}
		st, got := service.DecodeReply(reply)
		if st == service.KVOK && bytes.Equal(got, []byte("sv")) {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("stable READ: status %d value %q, want %q", st, got, "sv")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestLeasePartitionSafety is the lease-safety proof: partition the
// leaseholder from the majority, let the survivors elect a new leader and
// commit a write, and assert the STALE leaseholder (which still believes it
// leads) refuses to serve local reads — its lease is invalid, LocalReads
// does not advance, and a client pinned to it still observes the new write
// via the ordered fallback.
func TestLeasePartitionSafety(t *testing.T) {
	net := transport.NewInproc(0)
	var partition atomic.Bool
	net.SetFault(func(from, to string, frame []byte) (bool, bool) {
		// Cut replica 0 off from its peers in BOTH directions; client
		// traffic (non "lp-r*" endpoints) stays clean.
		if !partition.Load() {
			return false, false
		}
		cut := (from == "lp-r0" && (to == "lp-r1" || to == "lp-r2")) ||
			(to == "lp-r0" && (from == "lp-r1" || from == "lp-r2"))
		return cut, false
	})
	peers := []string{"lp-r0", "lp-r1", "lp-r2"}
	reps := make([]*gosmr.Replica, 3)
	for i := range 3 {
		kv := service.NewKV()
		rep, err := gosmr.NewReplica(gosmr.Config{
			ID: i, Peers: peers, ClientAddr: fmt.Sprintf("lp-c%d", i),
			Network:           net.As(peers[i]),
			BatchDelay:        time.Millisecond,
			HeartbeatInterval: 20 * time.Millisecond,
			SuspectTimeout:    150 * time.Millisecond,
			LeaseDuration:     100 * time.Millisecond,
			MaxClockSkew:      10 * time.Millisecond,
		}, kv)
		if err != nil {
			t.Fatal(err)
		}
		if err := rep.Start(); err != nil {
			t.Fatal(err)
		}
		t.Cleanup(rep.Stop)
		reps[i] = rep
	}
	cli, err := gosmr.Dial(gosmr.ClientConfig{
		Addrs:   []string{"lp-c0", "lp-c1", "lp-c2"},
		Network: net, Timeout: 30 * time.Second, AttemptTimeout: 500 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cli.Close)

	// Establish leadership, lease, and a baseline value through replica 0.
	if _, err := cli.Execute(service.EncodePut("x", []byte("old"))); err != nil {
		t.Fatal(err)
	}
	waitLeaseValid(t, reps[0], 5*time.Second)

	// Partition the leaseholder. The survivors hold lease promises, so the
	// election waits out the promise before a new leader can form — and the
	// old leader's ack quorum expires even earlier (skew margin).
	partition.Store(true)
	electionDeadline := time.Now().Add(10 * time.Second)
	for !reps[1].IsLeader() && !reps[2].IsLeader() {
		if time.Now().After(electionDeadline) {
			t.Fatal("no new leader emerged on the majority side")
		}
		time.Sleep(5 * time.Millisecond)
	}
	// Commit a write the stale leaseholder cannot have seen.
	if _, err := cli.Execute(service.EncodePut("x", []byte("new"))); err != nil {
		t.Fatalf("PUT on the majority side: %v", err)
	}

	// Give the stale side comfortably more than expiry + skew, then probe.
	time.Sleep(150 * time.Millisecond)
	if reps[0].LeaseValid() {
		t.Fatal("partitioned leaseholder still reports a valid lease after expiry + skew")
	}
	staleLocal := reps[0].LocalReads()

	// A client pinned to the stale leaseholder must still read x=new: the
	// replica refuses to serve the read locally and the client falls back to
	// the ordered path on the majority side.
	pinned, err := gosmr.Dial(gosmr.ClientConfig{
		Addrs:   []string{"lp-c0", "lp-c1", "lp-c2"},
		Network: net, Timeout: 30 * time.Second, AttemptTimeout: 300 * time.Millisecond,
		InitialTarget: 0,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(pinned.Close)
	for i := range 5 {
		reply, err := pinned.Read(service.EncodeGet("x"), gosmr.ReadLinearizable)
		if err != nil {
			t.Fatalf("READ %d via stale leaseholder: %v", i, err)
		}
		st, got := service.DecodeReply(reply)
		if st != service.KVOK || !bytes.Equal(got, []byte("new")) {
			t.Fatalf("READ %d returned status %d value %q, want %q — a stale local read is a linearizability violation", i, st, got, "new")
		}
	}
	if n := reps[0].LocalReads(); n != staleLocal {
		t.Errorf("stale leaseholder served %d local reads after lease expiry; must serve none", n-staleLocal)
	}
}
