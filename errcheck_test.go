package gosmr_test

// Errcheck-style vet for the durable path. A dropped error return from a
// write/sync/close/rename is how fsyncgate-class bugs are born: the kernel
// reported the loss and the program threw the report away. This test parses
// every production file of the packages that touch the disk and fails on:
//
//   - a bare call statement to a risky operation (`f.Close()`) — the error
//     is dropped with no trace in the source at all;
//   - a deferred or go'd risky call (`defer f.Close()`) — same drop, one
//     keyword later;
//   - an all-blank assignment (`_ = f.Close()`) WITHOUT a justification:
//     explicit drops are allowed only when a comment containing
//     "best-effort" sits on the same line or the line above, forcing every
//     intentional drop to say why it is safe.
//
// It is deliberately name-based (no type checking): in these packages a
// method called Close/Sync/Rename IS the disk, and a rare false positive
// costs one comment.

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"path/filepath"
	"strings"
	"testing"
)

// riskyCalls are the operations whose error return reports data loss.
var riskyCalls = map[string]bool{
	"Close": true, "Sync": true, "SyncDir": true,
	"Remove": true, "RemoveAll": true, "Rename": true, "Truncate": true,
	"Write": true, "WriteString": true, "WriteFile": true, "MkdirAll": true,
}

// errcheckTargets lists the production files under vet: everything in the
// packages that own the durable path.
func errcheckTargets(t *testing.T) []string {
	t.Helper()
	var files []string
	for _, glob := range []string{
		"internal/wal/*.go",
		"internal/vfs/*.go",
		"internal/core/snapdisk.go",
		"internal/core/snaptransfer.go",
	} {
		matches, err := filepath.Glob(glob)
		if err != nil {
			t.Fatal(err)
		}
		for _, m := range matches {
			if !strings.HasSuffix(m, "_test.go") {
				files = append(files, m)
			}
		}
	}
	if len(files) < 6 {
		t.Fatalf("errcheck targets resolved to %v; the layout moved under the test", files)
	}
	return files
}

func riskyCall(n ast.Node) string {
	call, ok := n.(*ast.CallExpr)
	if !ok {
		return ""
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || !riskyCalls[sel.Sel.Name] {
		return ""
	}
	return sel.Sel.Name
}

// containsRiskyCall reports the first risky call anywhere inside expr.
func containsRiskyCall(expr ast.Expr) string {
	name := ""
	ast.Inspect(expr, func(n ast.Node) bool {
		if name != "" {
			return false
		}
		if got := riskyCall(n); got != "" {
			name = got
			return false
		}
		return true
	})
	return name
}

func TestNoSilentlyDroppedDiskErrors(t *testing.T) {
	fset := token.NewFileSet()
	var violations []string
	report := func(pos token.Pos, form, name string) {
		p := fset.Position(pos)
		violations = append(violations,
			fmt.Sprintf("%s:%d: %s drops the error from %s", p.Filename, p.Line, form, name))
	}
	for _, path := range errcheckTargets(t) {
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
		if err != nil {
			t.Fatalf("parse %s: %v", path, err)
		}
		// Lines covered by a "best-effort" justification: the whole comment
		// group's lines plus the line after it (annotation above the
		// statement), so both `_ = x // best-effort: why` and a multi-line
		// leading comment work.
		waived := map[int]bool{}
		for _, cg := range f.Comments {
			if !strings.Contains(cg.Text(), "best-effort") {
				continue
			}
			for l := fset.Position(cg.Pos()).Line; l <= fset.Position(cg.End()).Line+1; l++ {
				waived[l] = true
			}
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch st := n.(type) {
			case *ast.ExprStmt:
				if name := riskyCall(st.X); name != "" {
					report(st.Pos(), "bare call statement", name)
				}
			case *ast.DeferStmt:
				if name := riskyCall(st.Call); name != "" {
					report(st.Pos(), "defer", name)
				}
			case *ast.GoStmt:
				if name := riskyCall(st.Call); name != "" {
					report(st.Pos(), "go statement", name)
				}
			case *ast.AssignStmt:
				allBlank := true
				for _, lhs := range st.Lhs {
					if id, ok := lhs.(*ast.Ident); !ok || id.Name != "_" {
						allBlank = false
					}
				}
				if !allBlank {
					return true
				}
				for _, rhs := range st.Rhs {
					name := containsRiskyCall(rhs)
					if name == "" {
						continue
					}
					if !waived[fset.Position(st.Pos()).Line] {
						report(st.Pos(), `unjustified "_ =" discard (add a best-effort comment)`, name)
					}
				}
			}
			return true
		})
	}
	for _, v := range violations {
		t.Error(v)
	}
}
