package gosmr_test

// True kill -9 crash-restart test: replicas run as real OS processes over
// TCP and die by SIGKILL, so nothing — not the WAL's pending buffer, not a
// graceful Close's final drain — survives except what the group-commit
// Syncer already fsynced. This is the test the in-process restart suite
// cannot be (an in-process "kill" is a graceful Stop, which drains the WAL
// and would mask a broken durability gate).
//
// The sharp assertion is quorum membership: after replica 2 is SIGKILLed
// and restarted from its DataDir, replica 1 is SIGKILLed too, leaving a
// majority only if the restarted replica is a functioning acceptor with its
// durable promises intact. Committing through that quorum proves recovery,
// not just catch-up. A final full-cluster SIGKILL + restart proves every
// acknowledged command is on disk.

import (
	"fmt"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"gosmr"
	"gosmr/internal/service"
)

// freePorts reserves n distinct TCP ports and releases them for the
// subprocesses to bind. The close-then-bind race is acceptable in a test.
func freePorts(t *testing.T, n int) []string {
	t.Helper()
	addrs := make([]string, n)
	listeners := make([]net.Listener, n)
	for i := range n {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		listeners[i] = l
		addrs[i] = l.Addr().String()
	}
	for _, l := range listeners {
		l.Close()
	}
	return addrs
}

// replicaProc manages one gosmr-replica subprocess.
type replicaProc struct {
	t    *testing.T
	bin  string
	args []string
	env  []string // extra environment (e.g. an armed GOSMR_CRASHPOINT)
	log  *os.File
	cmd  *exec.Cmd
}

func (p *replicaProc) start() {
	p.t.Helper()
	cmd := exec.Command(p.bin, p.args...)
	cmd.Stdout, cmd.Stderr = p.log, p.log
	if len(p.env) > 0 {
		cmd.Env = append(os.Environ(), p.env...)
	}
	if err := cmd.Start(); err != nil {
		p.t.Fatal(err)
	}
	p.cmd = cmd
}

// kill9 SIGKILLs the process: no signal handler, no deferred Stop, no WAL
// drain.
func (p *replicaProc) kill9() {
	p.t.Helper()
	if err := p.cmd.Process.Kill(); err != nil {
		p.t.Fatal(err)
	}
	_ = p.cmd.Wait()
	p.cmd = nil
}

// waitExit waits for the process to exit on its own and returns its exit
// code (-1 on timeout).
func (p *replicaProc) waitExit(timeout time.Duration) int {
	p.t.Helper()
	done := make(chan int, 1)
	go func() {
		_ = p.cmd.Wait()
		done <- p.cmd.ProcessState.ExitCode()
	}()
	select {
	case code := <-done:
		p.cmd = nil
		return code
	case <-time.After(timeout):
		return -1
	}
}

// buildReplicaBin compiles cmd/gosmr-replica into a temp dir.
func buildReplicaBin(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "gosmr-replica")
	build := exec.Command("go", "build", "-o", bin, "./cmd/gosmr-replica")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building replica: %v\n%s", err, out)
	}
	return bin
}

func TestKillNineProcessRestartRecovery(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and drives real replica subprocesses; skipped in -short")
	}
	bin := buildReplicaBin(t)

	addrs := freePorts(t, 6)
	peerAddrs := addrs[0] + "," + addrs[1] + "," + addrs[2]
	clientAddrs := addrs[3:6]
	procs := make([]*replicaProc, 3)
	for i := range 3 {
		logf, err := os.Create(filepath.Join(t.TempDir(), fmt.Sprintf("r%d.log", i)))
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { logf.Close() })
		procs[i] = &replicaProc{
			t: t, bin: bin, log: logf,
			args: []string{
				"-id", fmt.Sprint(i),
				"-peers", peerAddrs,
				"-client", clientAddrs[i],
				"-data-dir", t.TempDir(),
				"-sync", "batch",
				"-snapshot-every", "40",
				"-groups", "2",
				"-executor-workers", "2",
				"-stats", "0",
			},
		}
		procs[i].start()
	}
	t.Cleanup(func() {
		for _, p := range procs {
			if p.cmd != nil {
				_ = p.cmd.Process.Kill()
				_ = p.cmd.Wait()
			}
		}
	})

	dial := func() *gosmr.Client {
		t.Helper()
		cli, err := gosmr.Dial(gosmr.ClientConfig{Addrs: clientAddrs, Timeout: 20 * time.Second})
		if err != nil {
			t.Fatal(err)
		}
		return cli
	}
	put := func(cli *gosmr.Client, key string) {
		t.Helper()
		reply, err := cli.Execute(service.EncodePut(key, []byte("v-"+key)))
		if err != nil {
			t.Fatalf("PUT %s: %v", key, err)
		}
		if st, _ := service.DecodeReply(reply); st != service.KVOK {
			t.Fatalf("PUT %s status %d", key, st)
		}
	}
	get := func(cli *gosmr.Client, key string) {
		t.Helper()
		reply, err := cli.Execute(service.EncodeGet(key))
		if err != nil {
			t.Fatalf("GET %s: %v", key, err)
		}
		st, val := service.DecodeReply(reply)
		if st != service.KVOK || string(val) != "v-"+key {
			t.Fatalf("GET %s = status %d value %q, want v-%s", key, st, val, key)
		}
	}

	cli := dial()
	defer cli.Close()
	for i := range 30 {
		put(cli, fmt.Sprintf("pre-%d", i))
	}

	// SIGKILL follower 2 mid-run; the majority keeps committing.
	procs[2].kill9()
	for i := range 15 {
		put(cli, fmt.Sprintf("mid-%d", i))
	}

	// Restart replica 2 from its data dir, then SIGKILL the LEADER: the
	// remaining quorum is {1, 2} — commits now require the restarted
	// replica to be a working acceptor AND force a view change, so the
	// snapshot checkpoints that follow record promises from a view > 0
	// (recovering those promises is exactly what WAL checkpointing must
	// not lose).
	procs[2].start()
	time.Sleep(300 * time.Millisecond) // let it bind and start catch-up
	procs[0].kill9()
	for i := range 10 {
		put(cli, fmt.Sprintf("post-%d", i))
	}
	get(cli, "pre-0")
	cli.Close()

	// Full-cluster SIGKILL (replica 0 is already down): every acknowledged
	// command — and every promise, across the elected view — must come
	// back from the data directories alone.
	procs[1].kill9()
	procs[2].kill9()
	for _, p := range procs {
		p.start()
	}
	cli2 := dial()
	defer cli2.Close()
	for _, key := range []string{"pre-0", "pre-29", "mid-0", "mid-14", "post-0", "post-9"} {
		get(cli2, key)
	}
	put(cli2, "after-restart") // and the cluster still makes progress
	get(cli2, "after-restart")
}

// TestKillInsideSnapshotInstallRestartRecovers closes the transferred-
// snapshot cut window: a lagging replica is crashed INSIDE the install of a
// snapshot it received via state transfer, at four deterministic points
// armed through GOSMR_CRASHPOINT, in pipeline order —
//
//   - "transfer-chunk": mid-pull, right after the first fetched chunk was
//     fsynced into the staging file. The snapshot is a partial .part file;
//     reboot must either resume the pull from the staged offset or restart
//     it — never install from the torn prefix.
//   - "transfer-install": the snapshot has arrived at the installer but
//     nothing install-related is on disk yet. Before persist-before-cut, the
//     ordering groups had already journaled their log cuts by this moment
//     (the catch-up handler fast-forwarded immediately), so a crash here
//     left WAL cuts with no covering snapshot and reboot refused the
//     DataDir ("clear ... to rejoin via state transfer").
//   - "persist-chunk": mid-persist, after the first chunk file of the
//     installed snapshot's generation directory hit disk but before the
//     manifest rename that commits it. Reboot must treat the half-written
//     generation as garbage (the old manifest is still the newest intact
//     one) and redo the install.
//   - "transfer-persisted": the snapshot is durably on disk (manifest
//     renamed), the cuts are not journaled yet. Reboot must come up from
//     the new snapshot with the old WAL suffix covered idempotently.
//
// The test runs with a small -snapshot-chunk-bytes so both the transfer and
// the persisted generation are genuinely multi-chunk streams — the chunk
// crash points then prove a kill -9 at a chunk boundary (not just between
// whole snapshots) reboots cleanly.
//
// After each crash the replica must reboot from its DataDir — no refusal —
// and after the final (uncrashed) restart it must be a functioning acceptor:
// the test SIGKILLs the other follower and commits through a quorum that
// includes the recovered replica.
func TestKillInsideSnapshotInstallRestartRecovers(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and drives real replica subprocesses; skipped in -short")
	}
	bin := buildReplicaBin(t)
	for _, groups := range []int{1, 2} {
		t.Run(fmt.Sprintf("groups=%d", groups), func(t *testing.T) {
			addrs := freePorts(t, 6)
			peerAddrs := strings.Join(addrs[:3], ",")
			clientAddrs := addrs[3:6]
			procs := make([]*replicaProc, 3)
			for i := range 3 {
				logf, err := os.Create(filepath.Join(t.TempDir(), fmt.Sprintf("r%d.log", i)))
				if err != nil {
					t.Fatal(err)
				}
				t.Cleanup(func() { logf.Close() })
				procs[i] = &replicaProc{
					t: t, bin: bin, log: logf,
					args: []string{
						"-id", fmt.Sprint(i),
						"-peers", peerAddrs,
						"-client", clientAddrs[i],
						"-data-dir", t.TempDir(),
						"-sync", "batch",
						"-snapshot-every", "8",
						"-snapshot-chunk-bytes", "4096",
						"-groups", fmt.Sprint(groups),
						"-stats", "0",
					},
				}
				procs[i].start()
			}
			t.Cleanup(func() {
				for _, p := range procs {
					if p.cmd != nil {
						_ = p.cmd.Process.Kill()
						_ = p.cmd.Wait()
					}
				}
			})

			cli, err := gosmr.Dial(gosmr.ClientConfig{Addrs: clientAddrs[:2], Timeout: 30 * time.Second})
			if err != nil {
				t.Fatal(err)
			}
			defer cli.Close()
			put := func(key string) {
				t.Helper()
				reply, err := cli.Execute(service.EncodePut(key, []byte("v-"+key)))
				if err != nil {
					t.Fatalf("PUT %s: %v", key, err)
				}
				if st, _ := service.DecodeReply(reply); st != service.KVOK {
					t.Fatalf("PUT %s status %d", key, st)
				}
			}

			for i := range 10 {
				put(fmt.Sprintf("pre-%d", i))
			}

			// SIGKILL follower 2, then push the survivors far ahead. The
			// count matters: while a peer is down its SendQueue buffers up
			// to 1024 messages and REPLAYS them on reconnect, so a small gap
			// is refilled from that backlog without any catch-up at all.
			// Committing >1200 instances (sequential client: one instance,
			// one Propose each) overflows the queue, and the victim's real
			// gap then reaches below both the survivors' in-memory logs and
			// their WALs' one-generation retention — rejoining requires a
			// full snapshot transfer.
			procs[2].kill9()
			for i := range 1200 {
				put(fmt.Sprintf("mid-%d", i))
			}

			// Crash inside the install window, at each armed point in turn
			// (pipeline order: pull staging, install entry, persist chunk
			// stream, persist committed). Each run must die via the crash
			// point (exit code 137), proving the snapshot transfer actually
			// reached that stage.
			for _, point := range []string{"transfer-chunk", "transfer-install", "persist-chunk", "transfer-persisted"} {
				procs[2].env = []string{"GOSMR_CRASHPOINT=" + point}
				procs[2].start()
				if code := procs[2].waitExit(90 * time.Second); code != 137 {
					if out, err := os.ReadFile(procs[2].log.Name()); err == nil {
						t.Logf("victim log:\n%s", out)
					}
					t.Fatalf("crash point %s: replica exited with %d, want 137 (never reached the install?)", point, code)
				}
			}

			// Final restart, crash point disarmed: the replica must boot
			// from its DataDir — a "clear the data dir" refusal exits
			// immediately — and finish the interrupted state transfer.
			procs[2].env = nil
			procs[2].start()
			time.Sleep(2 * time.Second)
			if err := procs[2].cmd.Process.Signal(syscall.Signal(0)); err != nil {
				t.Fatalf("restarted replica is not running (boot refused its DataDir?): %v", err)
			}

			// The sharp assertion: SIGKILL the other follower. Committing now
			// requires a quorum of {leader, recovered replica} — the replica
			// that crashed twice mid-install must be a working acceptor.
			procs[1].kill9()
			for i := range 5 {
				put(fmt.Sprintf("post-%d", i))
			}
			reply, err := cli.Execute(service.EncodeGet("pre-0"))
			if err != nil {
				t.Fatal(err)
			}
			if st, val := service.DecodeReply(reply); st != service.KVOK || string(val) != "v-pre-0" {
				t.Fatalf("GET pre-0 = status %d value %q", st, val)
			}
		})
	}
}
