package gosmr_test

// True kill -9 crash-restart test: replicas run as real OS processes over
// TCP and die by SIGKILL, so nothing — not the WAL's pending buffer, not a
// graceful Close's final drain — survives except what the group-commit
// Syncer already fsynced. This is the test the in-process restart suite
// cannot be (an in-process "kill" is a graceful Stop, which drains the WAL
// and would mask a broken durability gate).
//
// The sharp assertion is quorum membership: after replica 2 is SIGKILLed
// and restarted from its DataDir, replica 1 is SIGKILLed too, leaving a
// majority only if the restarted replica is a functioning acceptor with its
// durable promises intact. Committing through that quorum proves recovery,
// not just catch-up. A final full-cluster SIGKILL + restart proves every
// acknowledged command is on disk.

import (
	"fmt"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"testing"
	"time"

	"gosmr"
	"gosmr/internal/service"
)

// freePorts reserves n distinct TCP ports and releases them for the
// subprocesses to bind. The close-then-bind race is acceptable in a test.
func freePorts(t *testing.T, n int) []string {
	t.Helper()
	addrs := make([]string, n)
	listeners := make([]net.Listener, n)
	for i := range n {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		listeners[i] = l
		addrs[i] = l.Addr().String()
	}
	for _, l := range listeners {
		l.Close()
	}
	return addrs
}

// replicaProc manages one gosmr-replica subprocess.
type replicaProc struct {
	t    *testing.T
	bin  string
	args []string
	log  *os.File
	cmd  *exec.Cmd
}

func (p *replicaProc) start() {
	p.t.Helper()
	cmd := exec.Command(p.bin, p.args...)
	cmd.Stdout, cmd.Stderr = p.log, p.log
	if err := cmd.Start(); err != nil {
		p.t.Fatal(err)
	}
	p.cmd = cmd
}

// kill9 SIGKILLs the process: no signal handler, no deferred Stop, no WAL
// drain.
func (p *replicaProc) kill9() {
	p.t.Helper()
	if err := p.cmd.Process.Kill(); err != nil {
		p.t.Fatal(err)
	}
	_ = p.cmd.Wait()
	p.cmd = nil
}

func TestKillNineProcessRestartRecovery(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and drives real replica subprocesses; skipped in -short")
	}
	bin := filepath.Join(t.TempDir(), "gosmr-replica")
	build := exec.Command("go", "build", "-o", bin, "./cmd/gosmr-replica")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building replica: %v\n%s", err, out)
	}

	addrs := freePorts(t, 6)
	peerAddrs := addrs[0] + "," + addrs[1] + "," + addrs[2]
	clientAddrs := addrs[3:6]
	procs := make([]*replicaProc, 3)
	for i := range 3 {
		logf, err := os.Create(filepath.Join(t.TempDir(), fmt.Sprintf("r%d.log", i)))
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { logf.Close() })
		procs[i] = &replicaProc{
			t: t, bin: bin, log: logf,
			args: []string{
				"-id", fmt.Sprint(i),
				"-peers", peerAddrs,
				"-client", clientAddrs[i],
				"-data-dir", t.TempDir(),
				"-sync", "batch",
				"-snapshot-every", "40",
				"-groups", "2",
				"-executor-workers", "2",
				"-stats", "0",
			},
		}
		procs[i].start()
	}
	t.Cleanup(func() {
		for _, p := range procs {
			if p.cmd != nil {
				_ = p.cmd.Process.Kill()
				_ = p.cmd.Wait()
			}
		}
	})

	dial := func() *gosmr.Client {
		t.Helper()
		cli, err := gosmr.Dial(gosmr.ClientConfig{Addrs: clientAddrs, Timeout: 20 * time.Second})
		if err != nil {
			t.Fatal(err)
		}
		return cli
	}
	put := func(cli *gosmr.Client, key string) {
		t.Helper()
		reply, err := cli.Execute(service.EncodePut(key, []byte("v-"+key)))
		if err != nil {
			t.Fatalf("PUT %s: %v", key, err)
		}
		if st, _ := service.DecodeReply(reply); st != service.KVOK {
			t.Fatalf("PUT %s status %d", key, st)
		}
	}
	get := func(cli *gosmr.Client, key string) {
		t.Helper()
		reply, err := cli.Execute(service.EncodeGet(key))
		if err != nil {
			t.Fatalf("GET %s: %v", key, err)
		}
		st, val := service.DecodeReply(reply)
		if st != service.KVOK || string(val) != "v-"+key {
			t.Fatalf("GET %s = status %d value %q, want v-%s", key, st, val, key)
		}
	}

	cli := dial()
	defer cli.Close()
	for i := range 30 {
		put(cli, fmt.Sprintf("pre-%d", i))
	}

	// SIGKILL follower 2 mid-run; the majority keeps committing.
	procs[2].kill9()
	for i := range 15 {
		put(cli, fmt.Sprintf("mid-%d", i))
	}

	// Restart replica 2 from its data dir, then SIGKILL the LEADER: the
	// remaining quorum is {1, 2} — commits now require the restarted
	// replica to be a working acceptor AND force a view change, so the
	// snapshot checkpoints that follow record promises from a view > 0
	// (recovering those promises is exactly what WAL checkpointing must
	// not lose).
	procs[2].start()
	time.Sleep(300 * time.Millisecond) // let it bind and start catch-up
	procs[0].kill9()
	for i := range 10 {
		put(cli, fmt.Sprintf("post-%d", i))
	}
	get(cli, "pre-0")
	cli.Close()

	// Full-cluster SIGKILL (replica 0 is already down): every acknowledged
	// command — and every promise, across the elected view — must come
	// back from the data directories alone.
	procs[1].kill9()
	procs[2].kill9()
	for _, p := range procs {
		p.start()
	}
	cli2 := dial()
	defer cli2.Close()
	for _, key := range []string{"pre-0", "pre-29", "mid-0", "mid-14", "post-0", "post-9"} {
		get(cli2, key)
	}
	put(cli2, "after-restart") // and the cluster still makes progress
	get(cli2, "after-restart")
}
