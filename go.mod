module gosmr

go 1.24
