// Kvstore: a replicated coordination store under concurrent writers with a
// leader crash mid-run — the ZooKeeper-style workload the paper benchmarks
// against. Demonstrates failover: the cluster elects a new leader and the
// clients keep going without losing acknowledged writes. Before the crash it
// also demonstrates the read path: linearizable reads served from replica
// state via leader leases / read indexes, without ordering through the log.
package main

import (
	"fmt"
	"log"
	"sync"
	"time"

	"gosmr"
	"gosmr/internal/service"
)

func main() {
	net := gosmr.NewInprocNetwork()
	peers := []string{"kv-r0", "kv-r1", "kv-r2"}
	stores := make([]*service.KV, 3)
	replicas := make([]*gosmr.Replica, 3)
	for i := range 3 {
		stores[i] = service.NewKV()
		rep, err := gosmr.NewReplica(gosmr.Config{
			ID: i, Peers: peers, ClientAddr: fmt.Sprintf("kv-c%d", i),
			Network:           net,
			BatchDelay:        time.Millisecond,
			HeartbeatInterval: 20 * time.Millisecond,
			SuspectTimeout:    200 * time.Millisecond,
		}, stores[i])
		if err != nil {
			log.Fatal(err)
		}
		if err := rep.Start(); err != nil {
			log.Fatal(err)
		}
		replicas[i] = rep
	}
	addrs := []string{"kv-c0", "kv-c1", "kv-c2"}

	// Linearizable reads never enter the ordering pipeline: the leaseholder
	// answers from local state, a follower runs one read-index round first.
	// Either way the read observes every acknowledged write; when the read
	// path is unavailable the client transparently orders the read instead.
	readCli, err := gosmr.Dial(gosmr.ClientConfig{
		Addrs: addrs, Network: net, Timeout: 20 * time.Second,
		InitialTarget: 1, // pin reads to a follower; writes find the leader
	})
	if err != nil {
		log.Fatal(err)
	}
	if _, err := readCli.Execute(service.EncodePut("greeting", []byte("hello"))); err != nil {
		log.Fatal(err)
	}
	reply, err := readCli.Read(service.EncodeGet("greeting"), gosmr.ReadLinearizable)
	if err != nil {
		log.Fatal(err)
	}
	if _, v := service.DecodeReply(reply); v != nil {
		fmt.Printf("linearizable read of %q: %s\n", "greeting", v)
	}
	readCli.Close()

	const writers, writes = 4, 50
	var wg sync.WaitGroup
	for w := range writers {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			cli, err := gosmr.Dial(gosmr.ClientConfig{Addrs: addrs, Network: net, Timeout: 20 * time.Second})
			if err != nil {
				log.Fatal(err)
			}
			defer cli.Close()
			for i := range writes {
				key := fmt.Sprintf("writer-%d/key-%d", w, i)
				if _, err := cli.Execute(service.EncodePut(key, []byte("v"))); err != nil {
					log.Fatalf("writer %d: %v", w, err)
				}
			}
		}(w)
	}

	// Crash the leader while the writers are running.
	time.Sleep(20 * time.Millisecond)
	fmt.Println("crashing the leader (replica 0)...")
	replicas[0].Stop()
	wg.Wait()

	// The survivors converge on the full write set (+1 for "greeting").
	want := writers*writes + 1
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if stores[1].Len() == want && stores[2].Len() == want {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	fmt.Printf("replica 1 has %d keys, replica 2 has %d keys (want %d)\n",
		stores[1].Len(), stores[2].Len(), want)
	fmt.Printf("new leader: replica %d (view %d)\n", replicas[1].Leader(), replicas[1].View())
	replicas[1].Stop()
	replicas[2].Stop()
}
