// Ordering-service: the paper's introductory motivation — a shared,
// high-throughput ordering service (null service: ordering is the product,
// execution is trivial). Runs a short closed-loop load test against the
// real pipeline and prints the achieved ordering throughput, batching and
// queue statistics.
package main

import (
	"fmt"
	"log"
	"sync"
	"sync/atomic"
	"time"

	"gosmr"
	"gosmr/internal/service"
)

func main() {
	net := gosmr.NewInprocNetwork()
	peers := []string{"ord-r0", "ord-r1", "ord-r2"}
	var replicas []*gosmr.Replica
	prof := gosmr.NewProfilingRegistry()
	for i := range 3 {
		cfg := gosmr.Config{
			ID: i, Peers: peers, ClientAddr: fmt.Sprintf("ord-c%d", i),
			Network:    net,
			BatchDelay: time.Millisecond,
			Window:     10,
			BatchBytes: 1300,
		}
		if i == 0 {
			cfg.Profiling = prof // profile the leader like the paper does
		}
		rep, err := gosmr.NewReplica(cfg, &service.Null{})
		if err != nil {
			log.Fatal(err)
		}
		if err := rep.Start(); err != nil {
			log.Fatal(err)
		}
		defer rep.Stop()
		replicas = append(replicas, rep)
	}
	addrs := []string{"ord-c0", "ord-c1", "ord-c2"}

	const clients = 32
	const runFor = 2 * time.Second
	payload := make([]byte, 128) // the paper's request size
	var done atomic.Bool
	var completed atomic.Uint64
	var wg sync.WaitGroup
	for range clients {
		wg.Add(1)
		go func() {
			defer wg.Done()
			cli, err := gosmr.Dial(gosmr.ClientConfig{Addrs: addrs, Network: net, Timeout: 20 * time.Second})
			if err != nil {
				log.Fatal(err)
			}
			defer cli.Close()
			for !done.Load() {
				if _, err := cli.Execute(payload); err != nil {
					return
				}
				completed.Add(1)
			}
		}()
	}
	start := time.Now()
	time.Sleep(runFor)
	done.Store(true)
	wg.Wait()
	elapsed := time.Since(start)

	total := completed.Load()
	fmt.Printf("ordered %d requests in %v: %.0f req/s with %d closed-loop clients\n",
		total, elapsed.Round(time.Millisecond), float64(total)/elapsed.Seconds(), clients)
	fmt.Printf("leader queue averages: %v\n", replicas[0].QueueStats())
	fmt.Println("leader thread profile (busy/blocked/waiting/other, % of run):")
	window := prof.Window()
	for _, st := range prof.Snapshot() {
		busy, blocked, waiting, other := st.Fractions(window)
		fmt.Printf("  %-16s %5.1f %5.1f %5.1f %5.1f\n",
			st.Name, 100*busy, 100*blocked, 100*waiting, 100*other)
	}
}
