// Lockserver: a fault-tolerant Chubby-style lock service — the paper's
// motivating "lock server" workload [1]. Two sessions race for a lock; the
// loser polls until the holder releases. All lock state is replicated, so
// lock ownership survives replica failures.
package main

import (
	"fmt"
	"log"
	"time"

	"gosmr"
	"gosmr/internal/service"
)

func main() {
	net := gosmr.NewInprocNetwork()
	peers := []string{"lock-r0", "lock-r1", "lock-r2"}
	for i := range 3 {
		rep, err := gosmr.NewReplica(gosmr.Config{
			ID: i, Peers: peers, ClientAddr: fmt.Sprintf("lock-c%d", i),
			Network: net, BatchDelay: time.Millisecond,
		}, service.NewLockServer())
		if err != nil {
			log.Fatal(err)
		}
		if err := rep.Start(); err != nil {
			log.Fatal(err)
		}
		defer rep.Stop()
	}
	addrs := []string{"lock-c0", "lock-c1", "lock-c2"}

	session := func(name string, id uint64, hold time.Duration) {
		cli, err := gosmr.Dial(gosmr.ClientConfig{Addrs: addrs, Network: net})
		if err != nil {
			log.Fatal(err)
		}
		defer cli.Close()
		// Poll-acquire the lock (the service's try-acquire is deterministic;
		// blocking waits live client-side).
		for {
			reply, err := cli.Execute(service.EncodeAcquire("leader-election", id))
			if err != nil {
				log.Fatal(err)
			}
			status, owner := service.DecodeLockReply(reply)
			if status == service.LockGranted {
				fmt.Printf("%s acquired the lock\n", name)
				break
			}
			fmt.Printf("%s: lock busy (held by session %d), retrying\n", name, owner)
			time.Sleep(20 * time.Millisecond)
		}
		time.Sleep(hold)
		if _, err := cli.Execute(service.EncodeRelease("leader-election", id)); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s released the lock\n", name)
	}

	done := make(chan struct{})
	go func() {
		defer close(done)
		session("alice", 1, 50*time.Millisecond)
	}()
	time.Sleep(10 * time.Millisecond) // let alice win the race
	session("bob", 2, 0)
	<-done
}
