// Quickstart: a three-replica replicated key-value store and a client, all
// in one process over the in-process transport. This is the smallest
// complete use of the public API.
package main

import (
	"fmt"
	"log"
	"time"

	"gosmr"
	"gosmr/internal/service"
)

func main() {
	net := gosmr.NewInprocNetwork()
	peers := []string{"replica-0", "replica-1", "replica-2"}

	// Start n = 2f+1 = 3 replicas: the cluster survives one crash.
	var replicas []*gosmr.Replica
	for i := range 3 {
		rep, err := gosmr.NewReplica(gosmr.Config{
			ID:         i,
			Peers:      peers,
			ClientAddr: fmt.Sprintf("client-%d", i),
			Network:    net,
			BatchDelay: time.Millisecond,
		}, service.NewKV())
		if err != nil {
			log.Fatal(err)
		}
		if err := rep.Start(); err != nil {
			log.Fatal(err)
		}
		defer rep.Stop()
		replicas = append(replicas, rep)
	}

	cli, err := gosmr.Dial(gosmr.ClientConfig{
		Addrs:   []string{"client-0", "client-1", "client-2"},
		Network: net,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer cli.Close()

	// Every Execute is ordered by Paxos and applied on all three replicas.
	if _, err := cli.Execute(service.EncodePut("greeting", []byte("hello, replicated world"))); err != nil {
		log.Fatal(err)
	}
	reply, err := cli.Execute(service.EncodeGet("greeting"))
	if err != nil {
		log.Fatal(err)
	}
	status, value := service.DecodeReply(reply)
	if status != service.KVOK {
		log.Fatalf("GET failed with status %d", status)
	}
	fmt.Printf("GET greeting = %q\n", value)
	fmt.Printf("leader is replica %d; view %d\n", replicas[0].Leader(), replicas[0].View())
}
