package gosmr_test

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
	"time"

	"gosmr"
	"gosmr/internal/service"
)

// cluster is a test helper owning n replicas over an in-process network.
type cluster struct {
	t        *testing.T
	net      gosmr.Network
	n        int
	replicas []*gosmr.Replica
	services []*service.KV
	addrs    []string // client addrs
}

// clusterConfig tweaks startCluster.
type clusterConfig struct {
	snapshotEvery      int
	snapshotChunkBytes int
	window             int
	groups             int
	executorWorkers    int
}

// startCluster boots an n-replica in-process cluster with fast failure
// detection, registering cleanup on t.
func startCluster(t *testing.T, n int, cc clusterConfig) *cluster {
	t.Helper()
	net := gosmr.NewInprocNetwork()
	c := &cluster{t: t, net: net, n: n}
	peers := make([]string, n)
	for i := range n {
		peers[i] = fmt.Sprintf("replica-%d", i)
	}
	for i := range n {
		svc := service.NewKV()
		rep, err := gosmr.NewReplica(gosmr.Config{
			ID:                 i,
			Peers:              peers,
			ClientAddr:         fmt.Sprintf("client-%d", i),
			Network:            net,
			Window:             cc.window,
			Groups:             cc.groups,
			SnapshotEvery:      cc.snapshotEvery,
			SnapshotChunkBytes: cc.snapshotChunkBytes,
			ExecutorWorkers:    cc.executorWorkers,
			BatchDelay:         time.Millisecond,
			HeartbeatInterval:  20 * time.Millisecond,
			SuspectTimeout:     200 * time.Millisecond,
		}, svc)
		if err != nil {
			t.Fatal(err)
		}
		if err := rep.Start(); err != nil {
			t.Fatal(err)
		}
		c.replicas = append(c.replicas, rep)
		c.services = append(c.services, svc)
		c.addrs = append(c.addrs, fmt.Sprintf("client-%d", i))
	}
	t.Cleanup(c.stopAll)
	return c
}

func (c *cluster) stopAll() {
	for _, r := range c.replicas {
		if r != nil {
			r.Stop()
		}
	}
}

// client dials the cluster with a short timeout.
func (c *cluster) client() *gosmr.Client {
	cli, err := gosmr.Dial(gosmr.ClientConfig{
		Addrs:          c.addrs,
		Network:        c.net,
		Timeout:        15 * time.Second,
		AttemptTimeout: 300 * time.Millisecond,
	})
	if err != nil {
		c.t.Fatal(err)
	}
	return cli
}

// waitConverged waits until every live replica has executed at least want
// requests.
func (c *cluster) waitConverged(want uint64, timeout time.Duration) {
	c.t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		all := true
		for _, r := range c.replicas {
			if r != nil && r.Executed() < want {
				all = false
			}
		}
		if all {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	for i, r := range c.replicas {
		if r != nil {
			c.t.Logf("replica %d executed %d", i, r.Executed())
		}
	}
	c.t.Fatalf("cluster did not converge to %d executions within %v", want, timeout)
}

func TestThreeReplicaBasicOrdering(t *testing.T) {
	c := startCluster(t, 3, clusterConfig{})
	cli := c.client()
	defer cli.Close()

	for i := range 20 {
		key := fmt.Sprintf("k%d", i)
		reply, err := cli.Execute(service.EncodePut(key, []byte(fmt.Sprintf("v%d", i))))
		if err != nil {
			t.Fatalf("PUT %d: %v", i, err)
		}
		if st, _ := service.DecodeReply(reply); st != service.KVOK {
			t.Fatalf("PUT %d status = %d", i, st)
		}
	}
	reply, err := cli.Execute(service.EncodeGet("k7"))
	if err != nil {
		t.Fatal(err)
	}
	st, v := service.DecodeReply(reply)
	if st != service.KVOK || string(v) != "v7" {
		t.Fatalf("GET k7 = %d %q, want OK v7", st, v)
	}
	// All replicas execute the same sequence (followers learn via
	// watermark piggyback / heartbeats).
	c.waitConverged(21, 5*time.Second)
	// And their service state converges byte for byte.
	want, err := c.services[0].Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < 3; i++ {
		got, err := c.services[i].Snapshot()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Errorf("replica %d state diverged", i)
		}
	}
}

func TestClientRedirectFromFollower(t *testing.T) {
	c := startCluster(t, 3, clusterConfig{})
	// First contact is follower 1; its redirect must land the client on the
	// leader (replica 0).
	cli, err := gosmr.Dial(gosmr.ClientConfig{
		Addrs:          c.addrs,
		Network:        c.net,
		Timeout:        15 * time.Second,
		AttemptTimeout: 300 * time.Millisecond,
		InitialTarget:  1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	reply, err := cli.Execute(service.EncodePut("via-follower", []byte("ok")))
	if err != nil {
		t.Fatalf("Execute via follower: %v", err)
	}
	if st, _ := service.DecodeReply(reply); st != service.KVOK {
		t.Fatalf("status = %d", st)
	}
}

func TestManyClientsConcurrent(t *testing.T) {
	c := startCluster(t, 3, clusterConfig{})
	const (
		clients = 8
		each    = 25
	)
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for ci := range clients {
		wg.Add(1)
		go func(ci int) {
			defer wg.Done()
			cli := c.client()
			defer cli.Close()
			for i := range each {
				key := fmt.Sprintf("c%d-k%d", ci, i)
				reply, err := cli.Execute(service.EncodePut(key, []byte("v")))
				if err != nil {
					errs <- fmt.Errorf("client %d op %d: %w", ci, i, err)
					return
				}
				if st, _ := service.DecodeReply(reply); st != service.KVOK {
					errs <- fmt.Errorf("client %d op %d: status %d", ci, i, st)
					return
				}
			}
		}(ci)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	c.waitConverged(clients*each, 10*time.Second)
	if c.services[0].Len() != clients*each {
		t.Errorf("keys = %d, want %d", c.services[0].Len(), clients*each)
	}
}

// TestParallelExecutionPublicAPI exercises the ConflictAware + ExecutorWorkers
// surface end to end: a cluster running the conflict-aware KV service with 4
// execution workers must serve a concurrent mixed-conflict workload (shared
// hot keys + private keys + snapshots) and converge every replica to
// byte-identical state.
func TestParallelExecutionPublicAPI(t *testing.T) {
	c := startCluster(t, 3, clusterConfig{executorWorkers: 4, snapshotEvery: 10})
	const (
		clients = 6
		each    = 30
	)
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for ci := range clients {
		wg.Add(1)
		go func(ci int) {
			defer wg.Done()
			cli := c.client()
			defer cli.Close()
			for i := range each {
				key := fmt.Sprintf("shared-%d", i%3) // conflicting across clients
				if i%2 == 0 {
					key = fmt.Sprintf("c%d-k%d", ci, i) // private
				}
				reply, err := cli.Execute(service.EncodePut(key, []byte(fmt.Sprintf("c%d-i%d", ci, i))))
				if err != nil {
					errs <- fmt.Errorf("client %d op %d: %w", ci, i, err)
					return
				}
				if st, _ := service.DecodeReply(reply); st != service.KVOK {
					errs <- fmt.Errorf("client %d op %d: status %d", ci, i, st)
					return
				}
			}
		}(ci)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	c.waitConverged(clients*each, 10*time.Second)
	want, err := c.services[0].Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < 3; i++ {
		got, err := c.services[i].Snapshot()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Errorf("replica %d state diverged under parallel execution", i)
		}
	}
	// The executor stage surfaces in the public queue statistics.
	if _, ok := c.replicas[0].QueueStats()["ExecutorQueue-0"]; !ok {
		t.Error("QueueStats missing ExecutorQueue-0")
	}
}

// TestAssembledSnapshotDeterminism pins the cluster-wide snapshot contract
// across the Groups × ExecutorWorkers matrix: with aggressive snapshotting
// and writes still arriving while drains run in the background (the
// copy-on-write window), every replica must assemble byte-identical
// snapshot images — same cut, same full/delta generation chain, same chunk
// boundaries, same reply cache. Concurrent clients hammer overlapping keys
// so cuts land mid-burst; the full/delta cadence is a pure function of the
// cut index, so no replica may disagree about which generations exist.
func TestAssembledSnapshotDeterminism(t *testing.T) {
	for _, groups := range []int{1, 2} {
		for _, workers := range []int{1, 8} {
			t.Run(fmt.Sprintf("groups=%d_workers=%d", groups, workers), func(t *testing.T) {
				c := startCluster(t, 3, clusterConfig{
					groups:             groups,
					executorWorkers:    workers,
					snapshotEvery:      10,
					snapshotChunkBytes: 1024,
				})
				const (
					clients = 4
					each    = 50
				)
				value := bytes.Repeat([]byte("d"), 300)
				var wg sync.WaitGroup
				errs := make(chan error, clients)
				for ci := range clients {
					wg.Add(1)
					go func(ci int) {
						defer wg.Done()
						cli := c.client()
						defer cli.Close()
						for i := range each {
							key := fmt.Sprintf("hot-%d", i%5) // churn: rewrites dirty the same chunks
							if i%3 == 0 {
								key = fmt.Sprintf("c%d-k%d", ci, i)
							}
							if _, err := cli.Execute(service.EncodePut(key, value)); err != nil {
								errs <- fmt.Errorf("client %d op %d: %w", ci, i, err)
								return
							}
						}
					}(ci)
				}
				wg.Wait()
				close(errs)
				for err := range errs {
					t.Fatal(err)
				}
				c.waitConverged(clients*each, 15*time.Second)

				// Every replica has executed the same prefix; once the last
				// cadence cut's drain completes everywhere, the assembled
				// images (cut + chain + reply cache in one encoding) must
				// match byte for byte.
				deadline := time.Now().Add(10 * time.Second)
				var imgs [3][]byte
				for time.Now().Before(deadline) {
					same := true
					for i, r := range c.replicas {
						imgs[i] = r.SnapshotImage()
					}
					for i := 1; i < 3; i++ {
						if imgs[i] == nil || !bytes.Equal(imgs[i], imgs[0]) {
							same = false
						}
					}
					if same && imgs[0] != nil {
						break
					}
					time.Sleep(15 * time.Millisecond)
				}
				if imgs[0] == nil {
					t.Fatal("no snapshot was ever assembled")
				}
				for i := 1; i < 3; i++ {
					if !bytes.Equal(imgs[i], imgs[0]) {
						t.Errorf("replica %d assembled snapshot image (%d bytes) differs from replica 0 (%d bytes)",
							i, len(imgs[i]), len(imgs[0]))
					}
				}
				ref := c.replicas[0].ReplyCacheBytes()
				for i := 1; i < 3; i++ {
					if !bytes.Equal(c.replicas[i].ReplyCacheBytes(), ref) {
						t.Errorf("replica %d reply cache diverged", i)
					}
				}
			})
		}
	}
}

func TestLeaderFailover(t *testing.T) {
	c := startCluster(t, 3, clusterConfig{})
	cli := c.client()
	defer cli.Close()
	if _, err := cli.Execute(service.EncodePut("before", []byte("1"))); err != nil {
		t.Fatal(err)
	}
	// Kill the leader (replica 0 leads view 0).
	c.replicas[0].Stop()
	c.replicas[0] = nil
	// The client must fail over to the new leader after the view change.
	start := time.Now()
	reply, err := cli.Execute(service.EncodePut("after", []byte("2")))
	if err != nil {
		t.Fatalf("Execute after leader crash: %v", err)
	}
	if st, _ := service.DecodeReply(reply); st != service.KVOK {
		t.Fatalf("status = %d", st)
	}
	t.Logf("failover completed in %v", time.Since(start))
	// One of the survivors is the leader now.
	lead := 0
	for _, r := range c.replicas[1:] {
		if r.IsLeader() {
			lead++
		}
	}
	if lead != 1 {
		t.Errorf("leaders among survivors = %d, want 1", lead)
	}
	// Both survivors converge.
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if c.replicas[1].Executed() >= 2 && c.replicas[2].Executed() >= 2 {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	s1, _ := c.services[1].Snapshot()
	s2, _ := c.services[2].Snapshot()
	if !bytes.Equal(s1, s2) {
		t.Error("survivor states diverged after failover")
	}
}

func TestReplicaRestartCatchesUp(t *testing.T) {
	c := startCluster(t, 3, clusterConfig{})
	cli := c.client()
	defer cli.Close()
	for i := range 10 {
		if _, err := cli.Execute(service.EncodePut(fmt.Sprintf("k%d", i), []byte("v"))); err != nil {
			t.Fatal(err)
		}
	}
	// Crash follower 2 and bring up a fresh instance with an empty log.
	c.replicas[2].Stop()
	for i := 10; i < 20; i++ {
		if _, err := cli.Execute(service.EncodePut(fmt.Sprintf("k%d", i), []byte("v"))); err != nil {
			t.Fatal(err)
		}
	}
	svc := service.NewKV()
	peers := []string{"replica-0", "replica-1", "replica-2"}
	rep, err := gosmr.NewReplica(gosmr.Config{
		ID: 2, Peers: peers, ClientAddr: "client-2b", Network: c.net,
		BatchDelay:        time.Millisecond,
		HeartbeatInterval: 20 * time.Millisecond,
		SuspectTimeout:    200 * time.Millisecond,
	}, svc)
	if err != nil {
		t.Fatal(err)
	}
	if err := rep.Start(); err != nil {
		t.Fatal(err)
	}
	c.replicas[2] = rep
	c.services[2] = svc
	// The restarted replica catches up on all 20+ instances via the
	// watermark + catch-up protocol.
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) && rep.Executed() < 20 {
		time.Sleep(20 * time.Millisecond)
	}
	if rep.Executed() < 20 {
		t.Fatalf("restarted replica executed %d, want >= 20", rep.Executed())
	}
	want, _ := c.services[0].Snapshot()
	got, _ := svc.Snapshot()
	if !bytes.Equal(got, want) {
		t.Error("restarted replica state differs from leader")
	}
}

func TestSnapshotStateTransfer(t *testing.T) {
	// With aggressive snapshotting the leader truncates its log, so a
	// rejoining replica must receive a snapshot, not just log entries.
	c := startCluster(t, 3, clusterConfig{snapshotEvery: 5})
	cli := c.client()
	defer cli.Close()
	c.replicas[2].Stop() // lags from the start
	for i := range 60 {
		if _, err := cli.Execute(service.EncodePut(fmt.Sprintf("k%d", i), []byte("v"))); err != nil {
			t.Fatal(err)
		}
	}
	svc := service.NewKV()
	rep, err := gosmr.NewReplica(gosmr.Config{
		ID: 2, Peers: []string{"replica-0", "replica-1", "replica-2"},
		ClientAddr: "client-2b", Network: c.net,
		SnapshotEvery:     5,
		BatchDelay:        time.Millisecond,
		HeartbeatInterval: 20 * time.Millisecond,
		SuspectTimeout:    200 * time.Millisecond,
	}, svc)
	if err != nil {
		t.Fatal(err)
	}
	if err := rep.Start(); err != nil {
		t.Fatal(err)
	}
	c.replicas[2] = rep
	c.services[2] = svc
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if got, _ := svc.Snapshot(); func() bool {
			want, _ := c.services[0].Snapshot()
			return bytes.Equal(got, want)
		}() {
			return // converged
		}
		time.Sleep(25 * time.Millisecond)
	}
	t.Fatalf("rejoined replica never converged (kv len %d, want %d)", svc.Len(), c.services[0].Len())
}

func TestDuplicateRequestExecutedOnce(t *testing.T) {
	c := startCluster(t, 3, clusterConfig{})
	// Two clients sharing an ID simulate a retry storm: the same (id, seq)
	// must execute exactly once. We use one client and verify a counter-like
	// service through the KV: PUT is idempotent, so instead check Executed
	// deltas with an artificially resent request via a second client with
	// the same ID and a manually aligned sequence.
	cliA := c.clientWithID(42)
	defer cliA.Close()
	if _, err := cliA.Execute(service.EncodePut("dup", []byte("x"))); err != nil {
		t.Fatal(err)
	}
	c.waitConverged(1, 5*time.Second)
	before := c.replicas[0].Executed()
	// Same ID, same first sequence number: the cluster must treat it as a
	// duplicate of cliA's request and NOT execute it again.
	cliB := c.clientWithID(42)
	defer cliB.Close()
	reply, err := cliB.Execute(service.EncodePut("dup", []byte("y")))
	if err != nil {
		t.Fatal(err)
	}
	if st, _ := service.DecodeReply(reply); st != service.KVOK {
		t.Fatalf("duplicate status = %d", st)
	}
	time.Sleep(300 * time.Millisecond)
	after := c.replicas[0].Executed()
	if after != before {
		t.Errorf("executed count moved %d -> %d: duplicate was re-executed", before, after)
	}
	// The value must still be the first write's.
	cliC := c.client()
	defer cliC.Close()
	got, err := cliC.Execute(service.EncodeGet("dup"))
	if err != nil {
		t.Fatal(err)
	}
	if _, v := service.DecodeReply(got); string(v) != "x" {
		t.Errorf("value = %q, want x (first write wins)", v)
	}
}

// clientWithID dials with a fixed client ID.
func (c *cluster) clientWithID(id uint64) *gosmr.Client {
	cli, err := gosmr.Dial(gosmr.ClientConfig{
		Addrs:          c.addrs,
		Network:        c.net,
		Timeout:        15 * time.Second,
		AttemptTimeout: 300 * time.Millisecond,
		ID:             id,
	})
	if err != nil {
		c.t.Fatal(err)
	}
	return cli
}

func TestFiveReplicaCluster(t *testing.T) {
	c := startCluster(t, 5, clusterConfig{})
	cli := c.client()
	defer cli.Close()
	for i := range 10 {
		if _, err := cli.Execute(service.EncodePut(fmt.Sprintf("k%d", i), []byte("v"))); err != nil {
			t.Fatal(err)
		}
	}
	c.waitConverged(10, 10*time.Second)
}

func TestSingleReplica(t *testing.T) {
	net := gosmr.NewInprocNetwork()
	svc := service.NewKV()
	rep, err := gosmr.NewReplica(gosmr.Config{
		ID: 0, Peers: []string{"solo"}, ClientAddr: "solo-client",
		Network: net, BatchDelay: time.Millisecond,
	}, svc)
	if err != nil {
		t.Fatal(err)
	}
	if err := rep.Start(); err != nil {
		t.Fatal(err)
	}
	defer rep.Stop()
	cli, err := gosmr.Dial(gosmr.ClientConfig{Addrs: []string{"solo-client"}, Network: net})
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	reply, err := cli.Execute(service.EncodePut("k", []byte("v")))
	if err != nil {
		t.Fatal(err)
	}
	if st, _ := service.DecodeReply(reply); st != service.KVOK {
		t.Fatalf("status = %d", st)
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := gosmr.NewReplica(gosmr.Config{}, service.NewKV()); err == nil {
		t.Error("empty config accepted")
	}
	if _, err := gosmr.NewReplica(gosmr.Config{
		ID: 5, Peers: []string{"a", "b", "c"}, ClientAddr: "x",
	}, service.NewKV()); err == nil {
		t.Error("out-of-range ID accepted")
	}
	if _, err := gosmr.NewReplica(gosmr.Config{
		ID: 0, Peers: []string{"a"}, ClientAddr: "x",
	}, nil); err == nil {
		t.Error("nil service accepted")
	}
	if _, err := gosmr.Dial(gosmr.ClientConfig{}); err == nil {
		t.Error("empty client config accepted")
	}
}
