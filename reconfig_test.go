package gosmr_test

// Reconfiguration suite: dynamic membership through the log.
//
// The in-process tests drive the whole epoch machinery end to end — a live
// 3→4 add under write load (the joiner catches up via snapshot transfer and
// then VOTES: the sharp assertion kills an original follower so the new
// quorum must include the joiner), a follower removal that shrinks the
// quorum and fires OnFaulted on the removed replica, a client pinned to a
// removed replica that re-resolves from the epoch-stamped TopoUpdate, and a
// boot that refuses a seed epoch older than what the data dir holds.
//
// The subprocess test kill -9s a replica at each reconfig-* crash point
// (armed via GOSMR_CRASHPOINT, exactly like the snapshot-install suite) and
// proves the reboot lands in a consistent epoch: the proposer crashing
// before/after the decide restarts with its OLD seed and converges, a
// follower crashing mid-adoption restarts with the NEW committed topology
// and votes in the new-epoch quorum.

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"gosmr"
	"gosmr/internal/service"
)

// rcCluster is a reconfigurable in-process cluster: unlike the static
// cluster helper it always carries PeerClientAddrs (so topologies hold the
// full client address map) and wires OnFaulted into per-replica channels.
type rcCluster struct {
	t        *testing.T
	net      gosmr.Network
	cc       clusterConfig
	dataDirs []string // non-nil only for durable clusters
	replicas []*gosmr.Replica
	services []*service.KV
	faulted  []chan string
}

func peerName(i int) string   { return fmt.Sprintf("replica-%d", i) }
func clientName(i int) string { return fmt.Sprintf("client-%d", i) }

// startRCCluster boots an n-replica epoch-0 cluster ready to reconfigure.
func startRCCluster(t *testing.T, n int, cc clusterConfig, durable bool) *rcCluster {
	t.Helper()
	c := &rcCluster{t: t, net: gosmr.NewInprocNetwork(), cc: cc}
	peers := make([]string, n)
	clients := make([]string, n)
	for i := range n {
		peers[i] = peerName(i)
		clients[i] = clientName(i)
	}
	for i := range n {
		dir := ""
		if durable {
			dir = t.TempDir()
		}
		c.dataDirs = append(c.dataDirs, dir)
		c.boot(gosmr.Config{
			ID:              i,
			Peers:           peers,
			ClientAddr:      clients[i],
			PeerClientAddrs: clients,
			DataDir:         dir,
		})
	}
	t.Cleanup(func() {
		for _, r := range c.replicas {
			if r != nil {
				r.Stop()
			}
		}
	})
	return c
}

// boot starts one replica from cfg (topology fields and addresses set by the
// caller), filling in the cluster-wide tuning, and appends it to the cluster.
func (c *rcCluster) boot(cfg gosmr.Config) *gosmr.Replica {
	c.t.Helper()
	fc := make(chan string, 1)
	cfg.Network = c.net
	cfg.Groups = c.cc.groups
	cfg.Window = c.cc.window
	cfg.SnapshotEvery = c.cc.snapshotEvery
	cfg.SnapshotChunkBytes = c.cc.snapshotChunkBytes
	cfg.ExecutorWorkers = c.cc.executorWorkers
	cfg.BatchDelay = time.Millisecond
	cfg.HeartbeatInterval = 20 * time.Millisecond
	cfg.SuspectTimeout = 200 * time.Millisecond
	cfg.OnFaulted = func(reason string) {
		select {
		case fc <- reason:
		default:
		}
	}
	svc := service.NewKV()
	rep, err := gosmr.NewReplica(cfg, svc)
	if err != nil {
		c.t.Fatal(err)
	}
	if err := rep.Start(); err != nil {
		c.t.Fatal(err)
	}
	c.replicas = append(c.replicas, rep)
	c.services = append(c.services, svc)
	c.faulted = append(c.faulted, fc)
	return rep
}

// client dials the cluster, first contact replica target.
func (c *rcCluster) client(target int) *gosmr.Client {
	c.t.Helper()
	addrs := make([]string, len(c.replicas))
	for i := range addrs {
		addrs[i] = clientName(i)
	}
	cli, err := gosmr.Dial(gosmr.ClientConfig{
		Addrs:          addrs,
		Network:        c.net,
		Timeout:        15 * time.Second,
		AttemptTimeout: 300 * time.Millisecond,
		InitialTarget:  target,
	})
	if err != nil {
		c.t.Fatal(err)
	}
	return cli
}

// leader polls until some replica leads group 0 and returns its ID.
func (c *rcCluster) leader() int {
	c.t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		for i, r := range c.replicas {
			if r != nil && r.IsLeader() {
				return i
			}
		}
		time.Sleep(10 * time.Millisecond)
	}
	c.t.Fatal("no leader elected within 10s")
	return -1
}

// waitStateConverged waits until every live replica's service state is
// byte-identical (the strongest convergence check: same commands, same
// order, nothing lost).
func (c *rcCluster) waitStateConverged(timeout time.Duration) {
	c.t.Helper()
	deadline := time.Now().Add(timeout)
	var lastDiff string
	for time.Now().Before(deadline) {
		var want []byte
		same, first := true, true
		for i, r := range c.replicas {
			if r == nil {
				continue
			}
			got, err := c.services[i].Snapshot()
			if err != nil {
				c.t.Fatal(err)
			}
			if first {
				want, first = got, false
			} else if !bytes.Equal(got, want) {
				same, lastDiff = false, fmt.Sprintf("replica %d diverges (%d vs %d bytes)", i, len(got), len(want))
			}
		}
		if same && !first {
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	for i, r := range c.replicas {
		if r != nil {
			c.t.Logf("replica %d: epoch=%d executed=%d transfers=%d", i, r.Epoch(), r.Executed(), r.StateTransfers())
		}
	}
	c.t.Fatalf("service state did not converge within %v: %s", timeout, lastDiff)
}

// rcWriter runs a closed loop of acked PUTs w-<id>-<k> until stopped; acked
// holds the number of CONFIRMED writes (every key below it must survive).
type rcWriter struct {
	id    int
	acked atomic.Int64
	stop  atomic.Bool
	done  chan error
}

func startWriter(c *rcCluster, id int) *rcWriter {
	w := &rcWriter{id: id, done: make(chan error, 1)}
	cli := c.client(0)
	go func() {
		defer cli.Close()
		for k := 0; !w.stop.Load(); k++ {
			reply, err := cli.Execute(service.EncodePut(rcKey(id, k), []byte(rcVal(k))))
			if err != nil {
				w.done <- fmt.Errorf("writer %d key %d: %w", id, k, err)
				return
			}
			if st, _ := service.DecodeReply(reply); st != service.KVOK {
				w.done <- fmt.Errorf("writer %d key %d: status %d", id, k, st)
				return
			}
			w.acked.Add(1)
		}
		w.done <- nil
	}()
	return w
}

func rcKey(w, k int) string { return fmt.Sprintf("w%d-%d", w, k) }
func rcVal(k int) string    { return fmt.Sprintf("v%d", k) }

// TestReconfigAddReplicaUnderLoad is the headline acceptance test: a live
// 3→4 add under continuous write load. The cluster snapshots aggressively so
// the joiner's gap reaches below the truncated prefix and it MUST catch up
// via chunked snapshot transfer; after the add an original follower is
// stopped, so further commits need a quorum of {leader, follower, joiner} —
// the joiner provably votes in the new epoch. Not one acked write may be
// lost across the handoff.
func TestReconfigAddReplicaUnderLoad(t *testing.T) {
	for _, groups := range []int{1, 2} {
		t.Run(fmt.Sprintf("groups=%d", groups), func(t *testing.T) {
			c := startRCCluster(t, 3, clusterConfig{
				groups:             groups,
				snapshotEvery:      25,
				snapshotChunkBytes: 2048,
			}, false)

			writers := make([]*rcWriter, 3)
			for i := range writers {
				writers[i] = startWriter(c, i)
			}
			stopWriters := func() {
				t.Helper()
				for _, w := range writers {
					w.stop.Store(true)
				}
				for _, w := range writers {
					if err := <-w.done; err != nil {
						t.Fatal(err)
					}
				}
			}

			// Let the prefix truncate: enough acked writes that snapshots
			// exist and the joiner cannot replay from anyone's in-memory log.
			waitAcked := func(total int64, timeout time.Duration) {
				t.Helper()
				deadline := time.Now().Add(timeout)
				for time.Now().Before(deadline) {
					var sum int64
					for _, w := range writers {
						sum += w.acked.Load()
					}
					if sum >= total {
						return
					}
					time.Sleep(10 * time.Millisecond)
				}
				t.Fatalf("writers did not reach %d acked writes in %v", total, timeout)
			}
			waitAcked(300, 30*time.Second)

			leader := c.leader()
			topo, err := c.replicas[leader].AddReplica(peerName(3), clientName(3))
			if err != nil {
				stopWriters()
				t.Fatalf("AddReplica: %v", err)
			}
			if topo.Epoch != 1 || topo.N() != 4 || !topo.Active(3) {
				t.Fatalf("committed topology = epoch %d n %d active(3) %v, want 1/4/true", topo.Epoch, topo.N(), topo.Active(3))
			}

			// Boot the joiner with exactly the committed topology as its seed
			// — the contract Replica.AddReplica documents.
			c.boot(gosmr.Config{
				ID:               3,
				Peers:            topo.Peers,
				ClientAddr:       topo.Clients[3],
				PeerClientAddrs:  topo.Clients,
				TopologyEpoch:    topo.Epoch,
				TopologyBaseView: int64(topo.BaseView),
			})

			// The add must be invisible to clients: another slab of acked
			// writes lands while the joiner is still catching up.
			waitAcked(500, 30*time.Second)
			stopWriters()

			c.waitStateConverged(60 * time.Second)

			// Every replica runs in the new epoch and the joiner got there by
			// genuine state transfer (its gap reached below the truncated log).
			for i, r := range c.replicas {
				if got := r.Epoch(); got != 1 {
					t.Errorf("replica %d epoch = %d, want 1", i, got)
				}
			}
			if n := c.replicas[3].StateTransfers(); n == 0 {
				t.Error("joiner caught up without a snapshot transfer; the test lost its teeth (lower snapshotEvery)")
			}

			// Zero acked-write loss, checked against the JOINER's state.
			joiner := c.services[3]
			for w := range writers {
				for k := range int(writers[w].acked.Load()) {
					st, v := service.DecodeReply(joiner.Execute(service.EncodeGet(rcKey(w, k))))
					if st != service.KVOK || string(v) != rcVal(k) {
						t.Fatalf("acked write %s lost on joiner: status %d value %q", rcKey(w, k), st, v)
					}
				}
			}

			// The joiner serves reads locally (follower read path in the new
			// epoch): retry until its lease-backed read index warms up.
			rdr := c.client(3)
			defer rdr.Close()
			deadline := time.Now().Add(15 * time.Second)
			for c.replicas[3].LocalReads() == 0 {
				if time.Now().After(deadline) {
					t.Fatal("joiner never served a local read in the new epoch")
				}
				if _, err := rdr.Read(service.EncodeGet(rcKey(0, 0)), gosmr.ReadLinearizable); err != nil {
					t.Fatalf("read via joiner: %v", err)
				}
				time.Sleep(20 * time.Millisecond)
			}

			// The sharp quorum assertion: stop an ORIGINAL follower. The new
			// epoch has n=4, quorum 3 — commits now require the joiner's vote.
			leader = c.leader()
			victim := -1
			for i := range 3 {
				if i != leader {
					victim = i
					break
				}
			}
			c.replicas[victim].Stop()
			c.replicas[victim] = nil

			cli := c.client(leader)
			defer cli.Close()
			for i := range 20 {
				reply, err := cli.Execute(service.EncodePut(fmt.Sprintf("post-add-%d", i), []byte("ok")))
				if err != nil {
					t.Fatalf("write through joiner-quorum: %v", err)
				}
				if st, _ := service.DecodeReply(reply); st != service.KVOK {
					t.Fatalf("write through joiner-quorum: status %d", st)
				}
			}
		})
	}
}

// TestReconfigRemoveFollowerShrinksQuorum removes a follower from a
// 4-replica cluster and proves both effects of the epoch bump: the removed
// replica learns its own removal (OnFaulted fires, the replica fail-stops)
// and the quorum SHRINKS — after stopping a second follower the remaining
// two replicas still commit, which the old 4-replica quorum of 3 could not.
func TestReconfigRemoveFollowerShrinksQuorum(t *testing.T) {
	c := startRCCluster(t, 4, clusterConfig{}, false)
	cli := c.client(0)
	defer cli.Close()
	for i := range 20 {
		if _, err := cli.Execute(service.EncodePut(fmt.Sprintf("pre-%d", i), []byte("x"))); err != nil {
			t.Fatalf("PUT pre-%d: %v", i, err)
		}
	}

	leader := c.leader()
	victim := (leader + 1) % 4
	topo, err := c.replicas[leader].RemoveReplica(victim)
	if err != nil {
		t.Fatalf("RemoveReplica(%d): %v", victim, err)
	}
	if topo.Epoch != 1 || topo.N() != 3 || topo.Quorum() != 2 || topo.Active(victim) {
		t.Fatalf("committed topology = epoch %d n %d quorum %d active(%d) %v, want 1/3/2/false",
			topo.Epoch, topo.N(), topo.Quorum(), victim, topo.Active(victim))
	}

	// Satellite: the removed replica's OnFaulted hook fires with the removal
	// reason (it learned the epoch that excludes it and fail-stopped).
	select {
	case reason := <-c.faulted[victim]:
		if !strings.Contains(reason, "removed") {
			t.Fatalf("OnFaulted reason = %q, want a removal notice", reason)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("OnFaulted never fired on the removed replica")
	}
	c.replicas[victim].Stop() // idempotent; the replica already stops itself
	c.replicas[victim] = nil

	// Quorum math shrank: kill a SECOND follower. 2 of the remaining 3 active
	// replicas must suffice — under the old epoch that would be 2 < 3 and the
	// cluster would stall.
	leader = c.leader()
	second := -1
	for i := range 4 {
		if i != leader && i != victim {
			second = i
			break
		}
	}
	c.replicas[second].Stop()
	c.replicas[second] = nil

	cli2 := c.client(leader)
	defer cli2.Close()
	for i := range 10 {
		reply, err := cli2.Execute(service.EncodePut(fmt.Sprintf("post-rm-%d", i), []byte("y")))
		if err != nil {
			t.Fatalf("write under shrunken quorum: %v", err)
		}
		if st, _ := service.DecodeReply(reply); st != service.KVOK {
			t.Fatalf("write under shrunken quorum: status %d", st)
		}
	}
	for i, r := range c.replicas {
		if r != nil && r.Epoch() != 1 {
			t.Errorf("replica %d epoch = %d, want 1", i, r.Epoch())
		}
	}
}

// TestReconfigClientRepinsAfterRemoval is the redirect-hardening regression:
// a client pinned to a replica that gets removed consumes the epoch-stamped
// TopoUpdate, drops the dead address from its map, re-resolves, and carries
// on — no manual address-list surgery.
func TestReconfigClientRepinsAfterRemoval(t *testing.T) {
	c := startRCCluster(t, 4, clusterConfig{}, false)
	seed := c.client(0)
	defer seed.Close()
	if _, err := seed.Execute(service.EncodePut("pin-k", []byte("pin-v"))); err != nil {
		t.Fatal(err)
	}

	leader := c.leader()
	victim := (leader + 1) % 4

	// Pin a reader to the victim (Read deliberately does not fail over).
	pinned := c.client(victim)
	defer pinned.Close()
	if reply, err := pinned.Read(service.EncodeGet("pin-k"), gosmr.ReadLinearizable); err != nil {
		t.Fatalf("read via victim before removal: %v", err)
	} else if st, v := service.DecodeReply(reply); st != service.KVOK || string(v) != "pin-v" {
		t.Fatalf("read via victim = status %d value %q", st, v)
	}

	if _, err := c.replicas[leader].RemoveReplica(victim); err != nil {
		t.Fatal(err)
	}

	// The pinned client must converge on its own: TopoUpdate (pushed on the
	// dying connection or received as the greeting when it re-connects
	// elsewhere) teaches it the new epoch and blanks the victim's address.
	deadline := time.Now().Add(20 * time.Second)
	for {
		_, err := pinned.Execute(service.EncodePut("after-rm", []byte("z")))
		if err == nil && pinned.Epoch() == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("pinned client never re-resolved: epoch=%d err=%v", pinned.Epoch(), err)
		}
		time.Sleep(50 * time.Millisecond)
	}
	if addrs := pinned.ClientAddrs(); addrs[victim] != "" {
		t.Fatalf("client address map still holds removed replica %d: %q", victim, addrs[victim])
	}
	// And its reads keep working, now served by a member of the new epoch.
	if reply, err := pinned.Read(service.EncodeGet("pin-k"), gosmr.ReadLinearizable); err != nil {
		t.Fatalf("read after re-pin: %v", err)
	} else if st, v := service.DecodeReply(reply); st != service.KVOK || string(v) != "pin-v" {
		t.Fatalf("read after re-pin = status %d value %q", st, v)
	}
}

// TestReconfigBootRefusesStaleSeed pins the boot-resolution contract: a
// durable replica whose data dir has adopted epoch 1 must refuse an epoch-0
// configuration seed (a stale peer list silently resurrecting the old shape
// is exactly the split-brain reconfiguration exists to prevent), naming both
// epochs — and must boot fine once given the committed topology.
func TestReconfigBootRefusesStaleSeed(t *testing.T) {
	c := startRCCluster(t, 3, clusterConfig{}, true)
	cli := c.client(0)
	defer cli.Close()
	for i := range 10 {
		if _, err := cli.Execute(service.EncodePut(fmt.Sprintf("pre-%d", i), []byte("x"))); err != nil {
			t.Fatal(err)
		}
	}

	leader := c.leader()
	topo, err := c.replicas[leader].AddReplica(peerName(3), clientName(3))
	if err != nil {
		t.Fatal(err)
	}
	// The joiner is never booted: epoch 1 has n=4, quorum 3, so these writes
	// need every original replica — guaranteeing each journaled the new
	// topology before the restart below.
	for i := range 10 {
		if _, err := cli.Execute(service.EncodePut(fmt.Sprintf("post-%d", i), []byte("y"))); err != nil {
			t.Fatal(err)
		}
	}

	victim := (leader + 1) % 3
	c.replicas[victim].Stop()
	dir := c.dataDirs[victim]

	stale := gosmr.Config{
		ID:              victim,
		Peers:           []string{peerName(0), peerName(1), peerName(2)},
		ClientAddr:      clientName(victim),
		PeerClientAddrs: []string{clientName(0), clientName(1), clientName(2)},
		DataDir:         dir,
		Network:         c.net,
	}
	rep, err := gosmr.NewReplica(stale, service.NewKV())
	if err != nil {
		t.Fatal(err)
	}
	err = rep.Start()
	if err == nil {
		rep.Stop()
		t.Fatal("boot accepted an epoch-0 seed over a data dir that adopted epoch 1")
	}
	for _, want := range []string{"newer than the configured seed epoch", "epoch 1", "epoch 0"} {
		if !strings.Contains(err.Error(), want) {
			t.Fatalf("boot refusal %q does not name %q", err, want)
		}
	}

	// With the committed topology as seed the same data dir boots, rejoins,
	// and the cluster commits again (quorum 3 = all original replicas).
	c.replicas[victim] = nil // boot() appends; drop the dead slot first
	fresh := c.boot(gosmr.Config{
		ID:               victim,
		Peers:            topo.Peers,
		ClientAddr:       topo.Clients[victim],
		PeerClientAddrs:  topo.Clients,
		TopologyEpoch:    topo.Epoch,
		TopologyBaseView: int64(topo.BaseView),
		DataDir:          dir,
	})
	c.replicas[victim], c.replicas[len(c.replicas)-1] = fresh, nil
	c.replicas = c.replicas[:len(c.replicas)-1]
	c.services = c.services[:len(c.services)-1]
	c.faulted = c.faulted[:len(c.faulted)-1]

	for i := range 5 {
		if _, err := cli.Execute(service.EncodePut(fmt.Sprintf("rejoin-%d", i), []byte("z"))); err != nil {
			t.Fatalf("write after rejoin: %v", err)
		}
	}
	if got := fresh.Epoch(); got != 1 {
		t.Fatalf("rejoined replica epoch = %d, want 1", got)
	}
}

// TestKillAtReconfigCrashpointsRestartRecovers kill -9s a real replica
// subprocess at each reconfiguration crash point and proves the reboot lands
// in a consistent epoch. The proposer points (reconfig-proposed before the
// command can commit, reconfig-decided after it did) crash the LEADER, which
// restarts with its OLD epoch-0 seed: whatever the log decided, replay plus
// the peers' TopoUpdate exchange converges the cluster, and writes commit.
// The adoption points (reconfig-journal mid-WAL-record, reconfig-applied
// after the swap) crash a FOLLOWER after the command committed; it restarts
// with the NEW topology returned by AddReplica and must then vote — the
// joiner is never started, so the new epoch's quorum of 3 is exactly
// {leader, other follower, restarted victim}.
func TestKillAtReconfigCrashpointsRestartRecovers(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and drives real replica subprocesses; skipped in -short")
	}
	bin := buildReplicaBin(t)

	for _, tc := range []struct {
		point     string
		victim    int  // 0 = the boot-view leader
		committed bool // must AddReplica have returned the topology?
	}{
		{point: "reconfig-proposed", victim: 0},
		{point: "reconfig-decided", victim: 0},
		{point: "reconfig-journal", victim: 2, committed: true},
		{point: "reconfig-applied", victim: 2, committed: true},
	} {
		t.Run(tc.point, func(t *testing.T) {
			addrs := freePorts(t, 8)
			peerAddrs := strings.Join(addrs[:3], ",")
			clientAddrs := addrs[3:6]
			joinerPeer, joinerClient := addrs[6], addrs[7]
			procs := make([]*replicaProc, 3)
			for i := range 3 {
				logf, err := os.Create(filepath.Join(t.TempDir(), fmt.Sprintf("r%d.log", i)))
				if err != nil {
					t.Fatal(err)
				}
				t.Cleanup(func() { logf.Close() })
				procs[i] = &replicaProc{
					t: t, bin: bin, log: logf,
					args: []string{
						"-id", fmt.Sprint(i),
						"-peers", peerAddrs,
						"-client", clientAddrs[i],
						"-client-peers", strings.Join(clientAddrs, ","),
						"-data-dir", t.TempDir(),
						"-sync", "batch",
						"-snapshot-every", "40",
						"-groups", "2",
						"-stats", "0",
					},
				}
				if i == tc.victim {
					procs[i].env = []string{"GOSMR_CRASHPOINT=" + tc.point}
				}
				procs[i].start()
			}
			t.Cleanup(func() {
				for _, p := range procs {
					if p.cmd != nil {
						_ = p.cmd.Process.Kill()
						_ = p.cmd.Wait()
					}
				}
			})

			cli, err := gosmr.Dial(gosmr.ClientConfig{Addrs: clientAddrs, Timeout: 30 * time.Second})
			if err != nil {
				t.Fatal(err)
			}
			defer cli.Close()
			put := func(key string) {
				t.Helper()
				reply, err := cli.Execute(service.EncodePut(key, []byte("v-"+key)))
				if err != nil {
					t.Fatalf("PUT %s: %v", key, err)
				}
				if st, _ := service.DecodeReply(reply); st != service.KVOK {
					t.Fatalf("PUT %s status %d", key, st)
				}
			}
			for i := range 25 {
				put(fmt.Sprintf("pre-%d", i))
			}

			// Commit (or die trying): the admin request runs on a separate
			// client because the victim may crash mid-conversation.
			admin, err := gosmr.Dial(gosmr.ClientConfig{Addrs: clientAddrs, Timeout: 20 * time.Second})
			if err != nil {
				t.Fatal(err)
			}
			topo, addErr := admin.AddReplica(joinerPeer, joinerClient)
			admin.Close()
			if tc.committed {
				if addErr != nil {
					t.Fatalf("AddReplica (victim is a follower; must commit): %v", addErr)
				}
				if topo.Epoch != 1 || topo.N() != 4 {
					t.Fatalf("committed topology = epoch %d n %d, want 1/4", topo.Epoch, topo.N())
				}
			} else if addErr == nil {
				t.Fatalf("AddReplica returned %+v, want an error (the proposer died at %s)", topo, tc.point)
			}

			// The armed point must actually fire: exit code 137 proves the
			// reconfiguration reached that stage before dying.
			if code := procs[tc.victim].waitExit(90 * time.Second); code != 137 {
				if out, err := os.ReadFile(procs[tc.victim].log.Name()); err == nil {
					t.Logf("victim log:\n%s", out)
				}
				t.Fatalf("crash point %s: replica exited with %d, want 137", tc.point, code)
			}

			// Restart: the crashed proposer reboots with its OLD seed (its
			// disk never adopted the epoch); the crashed follower reboots
			// with the COMMITTED topology, exactly like a redeployed node.
			procs[tc.victim].env = nil
			if tc.committed {
				procs[tc.victim].args = []string{
					"-id", fmt.Sprint(tc.victim),
					"-peers", strings.Join(topo.Peers, ","),
					"-client", clientAddrs[tc.victim],
					"-client-peers", strings.Join(topo.Clients, ","),
					"-data-dir", procs[tc.victim].args[9], // same data dir
					"-sync", "batch",
					"-snapshot-every", "40",
					"-groups", "2",
					"-epoch", fmt.Sprint(topo.Epoch),
					"-base-view", fmt.Sprint(topo.BaseView),
					"-stats", "0",
				}
			}
			procs[tc.victim].start()

			// Post-restart commits are the consistency proof. In the
			// committed cases the joiner was never started, so the epoch-1
			// quorum of 3 MUST include the restarted victim; in the proposer
			// cases the three replicas converge on whatever epoch the log
			// holds and keep committing.
			for i := range 15 {
				put(fmt.Sprintf("post-%d", i))
			}
			reply, err := cli.Execute(service.EncodeGet("pre-0"))
			if err != nil {
				t.Fatal(err)
			}
			if st, val := service.DecodeReply(reply); st != service.KVOK || string(val) != "v-pre-0" {
				t.Fatalf("GET pre-0 = status %d value %q", st, val)
			}
		})
	}
}

// TestReconfigConcurrentProposalsSerialize guards the epoch-uniqueness
// invariant: two AddReplica calls racing on the same leader must never both
// claim the same epoch slot. Serialized proposals commit distinct epochs; a
// loser fails loudly (ErrReconfigConflict, or a leadership blip during the
// handoff window) instead of returning a topology that does not contain its
// joiner. Without the proposer mutex and the apply-side epoch fence, both
// racers could commit divergent same-epoch topologies — undetectable by the
// epoch fence, fatal to adjacent-epoch quorum intersection.
func TestReconfigConcurrentProposalsSerialize(t *testing.T) {
	c := startRCCluster(t, 3, clusterConfig{groups: 1}, false)
	lead := c.replicas[c.leader()]

	cli := c.client(0)
	defer cli.Close()
	for k := range 5 {
		if _, err := cli.Execute(service.EncodePut(rcKey(9, k), []byte(rcVal(k)))); err != nil {
			t.Fatal(err)
		}
	}

	type outcome struct {
		peer string
		topo *gosmr.Topology
		err  error
	}
	results := make(chan outcome, 2)
	for i := range 2 {
		peer, client := peerName(3+i), clientName(3+i)
		go func() {
			topo, err := lead.AddReplica(peer, client)
			results <- outcome{peer: peer, topo: topo, err: err}
		}()
	}

	byEpoch := make(map[int64]string)
	wins := 0
	for range 2 {
		r := <-results
		if r.err != nil {
			t.Logf("proposal %s lost: %v", r.peer, r.err)
			continue
		}
		if prev, dup := byEpoch[r.topo.Epoch]; dup {
			t.Fatalf("proposals %s and %s both claim epoch %d", prev, r.peer, r.topo.Epoch)
		}
		byEpoch[r.topo.Epoch] = r.peer
		found := false
		for _, p := range r.topo.Peers {
			if p == r.peer {
				found = true
			}
		}
		if !found {
			t.Fatalf("AddReplica(%s) succeeded with a topology that does not contain it: %v",
				r.peer, r.topo.Peers)
		}
		wins++
	}
	if wins == 0 {
		t.Fatal("both concurrent proposals failed")
	}

	// Every live replica converges on one epoch with identical membership.
	want := lead.Topology()
	deadline := time.Now().Add(10 * time.Second)
	for i := range 3 {
		for {
			got := c.replicas[i].Topology()
			if got.Epoch == want.Epoch && fmt.Sprint(got.Peers) == fmt.Sprint(want.Peers) {
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("replica %d stuck at epoch %d peers %v; want epoch %d peers %v",
					i, got.Epoch, got.Peers, want.Epoch, want.Peers)
			}
			time.Sleep(10 * time.Millisecond)
		}
	}
	// The three booted replicas still form a quorum of the final epoch
	// (n=4 or n=5), so the cluster keeps committing.
	if _, err := cli.Execute(service.EncodePut("after-race", []byte("ok"))); err != nil {
		t.Fatal(err)
	}
}
