// Package gosmr is a high-throughput, multi-core-scalable state machine
// replication (SMR) library — a Go reproduction of "Achieving
// High-Throughput State Machine Replication in Multi-core Systems"
// (Santos & Schiper, ICDCS 2013), the JPaxos threading-architecture paper.
//
// A cluster of n = 2f+1 replicas runs MultiPaxos (with batching and
// pipelining) to agree on the order of client requests and applies them to
// a deterministic Service. Internally each replica is a pipeline of
// goroutine-owning modules connected by bounded queues — ClientIO pool,
// Batcher, Protocol, ServiceManager, per-peer ReplicaIO threads, plus
// FailureDetector and Retransmitter satellites — designed so throughput
// scales with available cores while end-to-end backpressure bounds memory.
//
// Quickstart:
//
//	svc := &myService{}                        // implements gosmr.Service
//	rep, err := gosmr.NewReplica(gosmr.Config{
//	    ID:         0,
//	    Peers:      []string{"h0:7000", "h1:7000", "h2:7000"},
//	    ClientAddr: "h0:8000",
//	}, svc)
//	...
//	rep.Start()
//	defer rep.Stop()
//
//	cli, err := gosmr.Dial(gosmr.ClientConfig{
//	    Addrs: []string{"h0:8000", "h1:8000", "h2:8000"},
//	})
//	reply, err := cli.Execute([]byte("incr"))
package gosmr

import (
	"time"

	"gosmr/internal/batch"
	"gosmr/internal/core"
	"gosmr/internal/executor"
	"gosmr/internal/profiling"
	"gosmr/internal/transport"
	"gosmr/internal/vfs"
	"gosmr/internal/wal"
	"gosmr/internal/wire"
)

// ReadConsistency selects the guarantee of Client.Read. Reads at either
// level never enter the ordering pipeline — they are served from local
// replica state via the leader-lease / read-index path (or, when that path
// is unavailable, transparently fall back to an ordered command).
type ReadConsistency uint8

const (
	// ReadLinearizable observes every write acknowledged before the read
	// started. On the leaseholder the read is answered locally after a
	// lease-validity check; on a follower it waits one read-index round to
	// the leaseholder and then reads local state.
	ReadLinearizable ReadConsistency = ReadConsistency(wire.ReadLinearizable)
	// ReadStable reads whatever state the contacted replica has applied:
	// no coordination at all, monotonic per replica, but with no bound on
	// staleness. The cheapest read — and the weakest.
	ReadStable ReadConsistency = ReadConsistency(wire.ReadStable)
)

// Service is the deterministic application replicated across the cluster.
// Execute must be a pure function of the service state and the request:
// every replica applies the same sequence of requests, so any
// non-determinism diverges the replicas.
//
// Snapshot/Restore is the simple whole-state contract: the replica calls
// Snapshot with execution quiesced and chunks the blob itself, so even a
// blob service never puts an unbounded unit on disk or the wire — but the
// serialization pause grows linearly with state size. Services with big
// state should additionally implement the chunked contract
// (internal/snapshot.Cutter, as the bundled KV store does): the replica
// then only marks a copy-on-write cut under quiesce, execution resumes
// immediately, and chunks — full or delta generations — drain in the
// background.
type Service interface {
	// Execute applies one request and returns its reply.
	Execute(req []byte) []byte
	// Snapshot serializes the full service state.
	Snapshot() ([]byte, error)
	// Restore replaces the service state from a Snapshot blob.
	Restore(snapshot []byte) error
}

// ConflictAware is an optional Service extension that unlocks parallel
// execution. A conflict-aware service declares, for each request, the set of
// state keys the request reads or writes; two requests conflict iff their
// key sets intersect. When the service implements ConflictAware and
// Config.ExecutorWorkers > 1, the replica executes non-conflicting requests
// concurrently on multiple workers while guaranteeing that conflicting
// requests run in log order on every replica — the observable state stays
// equivalent to a serial execution.
//
// Keys must be a pure function of the request bytes (never of service
// state). Returning nil or an empty slice marks the request "global": it
// acts as a barrier, serialized against every other request — the safe
// answer for unparseable or whole-state commands. Services that do not
// implement ConflictAware always execute sequentially, exactly as before.
type ConflictAware interface {
	Keys(req []byte) []string
}

// Network is a transport for a cluster: TCP in production, in-process for
// tests and single-host experiments. Obtain one from TCPNetwork or
// NewInprocNetwork.
type Network = transport.Network

// TCPNetwork returns the production TCP transport.
func TCPNetwork() Network { return &transport.TCP{} }

// NewInprocNetwork returns an in-process transport: replicas and clients
// created with the same Network value connect to each other by name, with
// no sockets involved. Useful for tests and single-process clusters.
func NewInprocNetwork() Network { return transport.NewInproc(0) }

// Config configures one replica. ID, Peers and ClientAddr are required.
type Config struct {
	// ID is this replica's index into Peers.
	ID int
	// Peers lists every replica's inter-replica address, indexed by ID.
	Peers []string
	// ClientAddr is this replica's client-facing listen address.
	ClientAddr string
	// PeerClientAddrs lists every replica's client-facing address, indexed
	// by ID. Optional for static clusters; required (and carried in the
	// topology) for clusters that reconfigure, so clients and joiners can
	// re-resolve the full address map from a TopoUpdate alone.
	PeerClientAddrs []string
	// TopologyEpoch seeds the topology epoch this replica boots into.
	// 0 (the default) is the boot-frozen legacy shape; a replica joining or
	// restarting into a reconfigured cluster must be given the committed
	// epoch (see Replica.AddReplica). Boot refuses a seed older than what
	// the DataDir holds.
	TopologyEpoch int64
	// TopologyBaseView seeds the first view of the boot epoch. Only
	// meaningful with TopologyEpoch > 0: pass BaseView from the committed
	// topology returned by AddReplica.
	TopologyBaseView int64
	// OnFaulted, when non-nil, is called (once, on its own goroutine) when
	// the replica fail-stops on a WAL disk fault or learns it was
	// permanently removed from the cluster. The replica shuts itself down
	// either way; the hook tells the operator why.
	OnFaulted func(reason string)
	// Network selects the transport; nil means TCP.
	Network Network

	// ClientIOWorkers sizes the ClientIO thread pool (default 4, the
	// paper's measured optimum on their hardware — Fig. 9).
	ClientIOWorkers int
	// Groups partitions ordering across that many parallel Paxos groups,
	// each with its own Batcher, Protocol thread, replicated log, and
	// retransmission state; a deterministic merge stage recombines the
	// per-group decision streams into one total order, so execution,
	// at-most-once semantics, and snapshots behave exactly as with a single
	// group. Requests route to a group by conflict key (keyless requests —
	// and all requests of a non-ConflictAware service — order in group 0).
	// Default 1: the paper's single ordering pipeline, wire-compatible with
	// pre-group replicas. Must be identical on every replica.
	Groups int
	// Window is the pipelining limit WND: the maximum number of consensus
	// instances in flight per ordering group (default 10).
	Window int
	// BatchBytes is the batching limit BSZ in encoded bytes (default 1300:
	// one Ethernet frame's worth, the paper's baseline).
	BatchBytes int
	// BatchDelay flushes an underfull batch after this delay (default 5ms).
	BatchDelay time.Duration

	// SnapshotEvery snapshots the service every that many decided
	// instances, enabling log truncation and fast state transfer
	// (0 disables).
	SnapshotEvery int
	// SnapshotChunkBytes caps every unit a snapshot moves in — the chunks a
	// cut yields, each persisted chunk file, every state-transfer frame
	// (default 256 KiB). SnapshotMaxChain makes every that-many-th snapshot
	// a full cut, with delta generations (only keys changed since the
	// previous cut) in between (default 4; 1 disables deltas). Both must be
	// identical on every replica — chunk boundaries and the full/delta
	// cadence are part of snapshot determinism.
	SnapshotChunkBytes int
	SnapshotMaxChain   int

	// DataDir, when non-empty, makes the replica durable: acceptor state
	// (promised view, accepted values, decided markers) is journaled to
	// per-group write-ahead logs and snapshots are persisted under this
	// directory. A replica killed mid-run and restarted from the same
	// DataDir replays its logs, rejoins without state transfer of the
	// durable prefix, and a full-cluster restart preserves every
	// acknowledged command. Empty (the default) keeps the purely in-memory
	// replica.
	DataDir string
	// SyncPolicy selects when WAL appends are fsynced: "batch" (default —
	// group commit: a per-group Syncer thread coalesces pending appends
	// into one fsync and protocol output waits for it, so the ordering
	// threads never block on disk), "always" (fsync inline on every
	// record), or "none" (never fsync and never wait: best-effort recovery
	// after clean shutdowns and most process kills, but no durability
	// guarantee). Ignored without DataDir.
	SyncPolicy string

	// ExecutorWorkers sets the number of parallel execution workers. It
	// takes effect only when the Service also implements ConflictAware;
	// 0 or 1 (the default) keeps the classic single-threaded execution.
	// A multi-key command (Keys returns several keys hashing to different
	// workers) is fence-scheduled onto only its involved workers — the
	// rest keep executing — so declaring precise key sets pays off even
	// for transactional workloads.
	ExecutorWorkers int

	// WALRetainCheckpoints keeps that many previous checkpoint generations
	// of WAL segments for disk-served catch-up (0 = the default of 1), and
	// WALRetainBytes, when > 0, keeps even older segments while the total
	// retained size fits the budget, letting disk-rich deployments serve
	// deep catch-up gaps without state transfer. Ignored without DataDir.
	WALRetainCheckpoints int
	WALRetainBytes       int64

	// FS supplies the filesystem every durable path goes through — WAL
	// segments, snapshot chunks and manifests, state-transfer staging. Nil
	// (the default) uses the real filesystem through a zero-overhead
	// passthrough; tests inject vfs.NewFaultFS to script disk faults
	// (failed fsyncs, short writes, ENOSPC, read corruption) against a real
	// replica. Ignored without DataDir.
	FS vfs.FS

	// HeartbeatInterval and SuspectTimeout tune the failure detector.
	HeartbeatInterval time.Duration
	SuspectTimeout    time.Duration

	// LeaseDuration is how long a heartbeat-carried leader lease lasts.
	// While a majority of followers holds unexpired lease promises, the
	// leader serves linearizable reads from local state — and answers
	// followers' read-index queries so THEY can serve reads locally too —
	// without ordering reads through the log. Followers holding a promise
	// delay elections until it expires, so losing the leader can add up to
	// one lease duration to failover. 0 takes the default
	// (6×HeartbeatInterval); negative disables leases, sending every
	// Client.Read down the ordered fallback path.
	//
	// The read path executes read-only requests on non-execution threads,
	// concurrently with the execution stage: the Service must tolerate
	// concurrent Execute calls for read-only requests (a service guarding
	// its state with a mutex, like the bundled KV store, qualifies).
	LeaseDuration time.Duration
	// MaxClockSkew bounds clock RATE drift between replicas over one lease
	// interval (not absolute clock offset — both sides measure durations on
	// their own clock). The leader stops trusting a promise MaxClockSkew
	// before the follower stops honoring it. Default 10ms.
	MaxClockSkew time.Duration

	// Profiling, when non-nil, receives per-module-thread accounting
	// (busy/blocked/waiting/other) like the paper's measurements.
	Profiling *profiling.Registry
}

// Replica is one member of the replicated state machine.
type Replica struct {
	inner *core.Replica
}

// NewReplica builds an unstarted replica around svc.
func NewReplica(cfg Config, svc Service) (*Replica, error) {
	policy, err := wal.ParsePolicy(cfg.SyncPolicy)
	if err != nil {
		return nil, err
	}
	inner, err := core.NewReplica(core.Config{
		ID:                   cfg.ID,
		PeerAddrs:            cfg.Peers,
		ClientAddr:           cfg.ClientAddr,
		PeerClientAddrs:      cfg.PeerClientAddrs,
		TopologyEpoch:        cfg.TopologyEpoch,
		TopologyBaseView:     cfg.TopologyBaseView,
		OnFaulted:            cfg.OnFaulted,
		Network:              cfg.Network,
		ClientIOWorkers:      cfg.ClientIOWorkers,
		Groups:               cfg.Groups,
		Window:               cfg.Window,
		Batch:                batch.Policy{MaxBytes: cfg.BatchBytes, MaxDelay: cfg.BatchDelay},
		SnapshotEvery:        cfg.SnapshotEvery,
		SnapshotChunkBytes:   cfg.SnapshotChunkBytes,
		SnapshotMaxChain:     cfg.SnapshotMaxChain,
		DataDir:              cfg.DataDir,
		SyncPolicy:           policy,
		WALRetainCheckpoints: cfg.WALRetainCheckpoints,
		WALRetainBytes:       cfg.WALRetainBytes,
		FS:                   cfg.FS,
		ExecutorWorkers:      cfg.ExecutorWorkers,
		HeartbeatInterval:    cfg.HeartbeatInterval,
		SuspectTimeout:       cfg.SuspectTimeout,
		LeaseDuration:        cfg.LeaseDuration,
		MaxClockSkew:         cfg.MaxClockSkew,
		Profiling:            cfg.Profiling,
	}, svc)
	if err != nil {
		return nil, err
	}
	return &Replica{inner: inner}, nil
}

// Start launches all replica modules and binds its listeners.
func (r *Replica) Start() error { return r.inner.Start() }

// Stop shuts the replica down and waits for all of its goroutines.
func (r *Replica) Stop() { r.inner.Stop() }

// ID returns the replica's ID.
func (r *Replica) ID() int { return r.inner.ID() }

// IsLeader reports whether this replica is the established leader.
func (r *Replica) IsLeader() bool { return r.inner.IsLeader() }

// Leader returns the current leader's replica ID (a lock-free hint).
func (r *Replica) Leader() int { return r.inner.Leader() }

// View returns the current view number.
func (r *Replica) View() int32 { return int32(r.inner.View()) }

// Executed returns the number of requests executed by the local service.
func (r *Replica) Executed() uint64 { return r.inner.Executed() }

// Groups returns the number of ordering groups the replica runs.
func (r *Replica) Groups() int { return r.inner.Groups() }

// Topology is the epoch-stamped cluster shape: the replica peer addresses
// (removed IDs leave a permanent "" hole), the client-facing addresses, the
// ordering-group count, and the first view of the epoch. See the
// Reconfiguration section of the README.
type Topology = wire.Topology

// Topology returns a copy of the committed cluster topology this replica
// currently operates under.
func (r *Replica) Topology() *Topology { return r.inner.Topology() }

// Epoch returns the committed topology epoch (0 until the first
// reconfiguration).
func (r *Replica) Epoch() int64 { return r.inner.Epoch() }

// ErrReconfigConflict is returned by AddReplica/RemoveReplica when the
// epoch advanced but a concurrent reconfiguration won the slot with a
// different change (check with errors.Is). Inspect Topology() and re-propose
// against the committed shape.
var ErrReconfigConflict = core.ErrReconfigConflict

// AddReplica commits a single-step reconfiguration appending one replica
// with the given peer-facing and client-facing addresses, blocking until the
// config command is ordered and takes effect. It returns the committed
// topology; boot the joiner with Config.TopologyEpoch/TopologyBaseView and
// the Peers list taken from exactly that topology, and it catches up through
// snapshot transfer plus the WAL like any lagging replica. Must be called on
// the leader. If a concurrent proposal wins the epoch slot with a different
// change, the call fails with ErrReconfigConflict instead of returning a
// topology that does not contain the joiner.
func (r *Replica) AddReplica(peerAddr, clientAddr string) (*Topology, error) {
	return r.inner.AddReplica(peerAddr, clientAddr)
}

// RemoveReplica commits a single-step reconfiguration removing replica id.
// Its slot becomes a permanent hole (IDs are never reused) and the quorum
// size shrinks with the membership. Must be called on the leader, which
// cannot remove itself.
func (r *Replica) RemoveReplica(id int) (*Topology, error) {
	return r.inner.RemoveReplica(id)
}

// DecidedBatches returns the number of non-empty batches delivered in merged
// order — the ordering layer's useful output rate.
func (r *Replica) DecidedBatches() uint64 { return r.inner.DecidedBatches() }

// LeaseValid reports whether this replica currently holds a valid leader
// lease (it may serve linearizable reads from local state).
func (r *Replica) LeaseValid() bool { return r.inner.LeaseValid() }

// LocalReads returns the number of reads this replica served on the
// lease/read-index path — reads that never entered the ordering pipeline.
func (r *Replica) LocalReads() uint64 { return r.inner.LocalReads() }

// StateTransfers returns the number of snapshots installed from peers
// (catch-up state transfer). A durable replica restarted from its DataDir
// recovers its own prefix locally, so this stays zero unless the replica
// fell behind a truncation horizon.
func (r *Replica) StateTransfers() uint64 { return r.inner.StateTransfers() }

// SnapshotFailures returns the number of failed snapshot stages (cut,
// drain, persist, transfer pull). A replica with a rising count keeps
// running on its full WAL, but its log is not being truncated; alert on it.
func (r *Replica) SnapshotFailures() uint64 { return r.inner.SnapshotFailures() }

// TransferResumedBytes returns the total staged bytes that resumed
// state-transfer pulls reused instead of refetching from byte 0.
func (r *Replica) TransferResumedBytes() uint64 { return r.inner.TransferResumedBytes() }

// Faulted reports whether this replica fail-stopped on a WAL disk fault
// (failed write or fsync on the append path). A faulted replica shuts
// itself down — it sends no heartbeats and acknowledges nothing — so the
// remaining quorum elects around it; restarting it from the same DataDir
// replays exactly what the disk holds.
func (r *Replica) Faulted() bool { return r.inner.Faulted() }

// WALFaults returns the number of fail-stop WAL disk faults observed.
func (r *Replica) WALFaults() uint64 { return r.inner.WALFaults() }

// DiskQuarantines returns the number of corrupt on-disk artifacts (WAL
// segments, snapshot manifests) renamed aside to *.corrupt instead of
// refusing to boot — possible only when the cluster can refill the lost
// state from peers.
func (r *Replica) DiskQuarantines() uint64 { return r.inner.DiskQuarantines() }

// ReplyCacheBytes returns the deterministic marshaled reply cache — equal
// byte-for-byte across the replicas of a converged cluster, which makes it
// a convenient operational check for divergence (the determinism and
// crash-restart tests rely on it).
func (r *Replica) ReplyCacheBytes() []byte { return r.inner.ReplyCacheBytes() }

// SnapshotImage returns a copy of the newest assembled snapshot's transfer
// image — cut, generation chain, and reply cache in one deterministic byte
// string — or nil before the first cut. Converged replicas produce
// byte-identical images regardless of Groups or ExecutorWorkers.
func (r *Replica) SnapshotImage() []byte { return r.inner.SnapshotImage() }

// ClientAddr returns the bound client-facing address (resolves ephemeral
// ports).
func (r *Replica) ClientAddr() string { return r.inner.ClientAddr() }

// ExecutorStats is the execution scheduler's counter snapshot: tasks
// dispatched to workers, global barriers (keyless commands), multi-key
// join nodes, fences enqueued for them, and fences that had to wait at
// their join. Joins ≈ Barriers trending to zero under a conflict-aware
// service is the signal that multi-key commands pipeline instead of
// stopping the world.
type ExecutorStats = executor.Stats

// ExecStats returns the execution stage's scheduler counters. Safe to call
// on a running replica.
func (r *Replica) ExecStats() ExecutorStats { return r.inner.ExecStats() }

// QueueStats returns the time-averaged lengths of the internal queues
// (RequestQueue, ProposalQueue, DispatcherQueue, DecisionQueue, and the
// per-worker ExecutorQueue-i when parallel execution is enabled) — the
// statistics of the paper's Table I, extended with the executor stage.
func (r *Replica) QueueStats() map[string]float64 { return r.inner.QueueStats() }

// NewProfilingRegistry returns a registry to pass in Config.Profiling; its
// Snapshot method reports per-thread busy/blocked/waiting/other times.
func NewProfilingRegistry() *profiling.Registry { return profiling.NewRegistry() }
